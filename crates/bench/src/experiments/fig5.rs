//! Figure 5 — the Facebook evaluation (§5.3.1): ten panels sweeping group
//! size, network size, thread count, budget, smoothing, elite fraction and
//! start-node count.
//!
//! All solvers are obtained via [`SolverSpec`] → `waso::registry()`; the
//! comparison roster, its table columns, and the cost caps derive from
//! registry metadata ([`crate::runner::roster_specs`]).
//!
//! All solvers run with explicit `stages = 10` (the paper's stage-count
//! formula degenerates to r = 1 at realistic n; see
//! `waso_algos::ocba::derive_stages` and EXPERIMENTS.md).

use waso_algos::SolverSpec;
use waso_core::WasoInstance;
use waso_datasets::synthetic;

use crate::report::{Cell, Table, TableSet};
use crate::runner::{
    harness_spec, measure_spec, measure_spec_avg, roster_specs, ExperimentContext,
};

pub(crate) const STAGES: u32 = 10;

/// The harness's standard CBAS-ND spec (budget + stages + start nodes) —
/// the baseline the parameter sweeps (5d/5g/5h) perturb.
pub(crate) fn cbasnd_spec(budget: u64, m: Option<usize>) -> SolverSpec {
    let mut spec = SolverSpec::cbas_nd().budget(budget).stages(STAGES);
    if let Some(m) = m {
        spec = spec.start_nodes(m);
    }
    spec
}

/// Measures one cell of a roster sweep: `None` when the cost cap skips
/// the solver at this size.
fn roster_cell(
    solver: &crate::runner::RosterSolver<'_>,
    registry: &waso_algos::SolverRegistry,
    inst: &WasoInstance,
    ctx: &ExperimentContext,
    k: usize,
) -> Option<crate::runner::Measurement> {
    if solver.entry.costly && k > ctx.costly_k_limit() {
        // The paper aborts per-candidate-pricing solvers beyond small
        // groups (12-hour timeouts, §5.3.1).
        return None;
    }
    Some(measure_spec_avg(
        registry,
        &solver.spec,
        inst,
        ctx.seed,
        solver.repeats(ctx),
    ))
}

/// Shared "quality + time vs k" sweep used by Figures 5(a,b), 7(a,b),
/// 8(a,b): the registry's comparison roster on one graph.
pub(crate) fn sweep_k(
    graph: &waso_graph::SocialGraph,
    ks: &[usize],
    ctx: &ExperimentContext,
    id_time: &str,
    id_quality: &str,
    dataset: &str,
) -> TableSet {
    let registry = waso::registry();
    let budget = ctx.budget();
    let m = Some(ctx.harness_m(graph.num_nodes()));
    let roster = roster_specs(&registry, budget, STAGES, m);

    let cols: Vec<String> = std::iter::once("k".to_string())
        .chain(roster.iter().map(|s| s.entry.label.to_string()))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut time = Table::new(
        id_time,
        format!("execution time vs k in seconds ({dataset})"),
        &col_refs,
    );
    let mut quality = Table::new(
        id_quality,
        format!("solution quality vs k ({dataset})"),
        &col_refs,
    );

    for &k in ks {
        let inst = WasoInstance::new(graph.clone(), k).expect("k <= n");
        let mut time_row = vec![Cell::from(k)];
        let mut quality_row = vec![Cell::from(k)];
        for solver in &roster {
            match roster_cell(solver, &registry, &inst, ctx, k) {
                Some(meas) => {
                    time_row.push(Cell::from(meas.seconds));
                    quality_row.push(meas.quality.map(Cell::from).unwrap_or(Cell::Missing));
                }
                None => {
                    time_row.push(Cell::Missing);
                    quality_row.push(Cell::Missing);
                }
            }
        }
        time.push_row(time_row);
        quality.push_row(quality_row);
    }

    let mut set = TableSet::new();
    set.push(time);
    set.push(quality);
    set
}

/// Figures 5(a)+(b): time and quality vs group size on Facebook-like.
pub fn quality_time_vs_k(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    sweep_k(
        &g,
        &ctx.k_sweep_facebook(),
        ctx,
        "fig5a",
        "fig5b",
        "Facebook-like",
    )
}

/// Figure 5(c): execution time vs network size (k = 10).
pub fn time_vs_n(ctx: &ExperimentContext) -> TableSet {
    let registry = waso::registry();
    let k = 10;
    // Column list derived from the roster, like everywhere else.
    let roster_cols: Vec<String> = registry
        .roster()
        .iter()
        .map(|e| e.label.to_string())
        .collect();
    let cols: Vec<String> = std::iter::once("n".to_string())
        .chain(roster_cols)
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut time = Table::new(
        "fig5c",
        "Figure 5(c): execution time vs n, k=10 (Facebook-like)",
        &col_refs,
    );
    for &n in &ctx.n_sweep() {
        let g = synthetic::facebook_like_n(n, ctx.seed ^ n as u64);
        let inst = WasoInstance::new(g, k).expect("n >= 10");
        let budget = ctx.budget();
        let m = Some(ctx.harness_m(n));
        let mut row = vec![Cell::from(n)];
        for solver in roster_specs(&registry, budget, STAGES, m) {
            // Costly solvers scale poorly in n too; cap them at 10k nodes.
            if solver.entry.costly && n > 10_000 {
                row.push(Cell::Missing);
                continue;
            }
            let meas = measure_spec(&registry, &solver.spec, &inst, ctx.seed);
            row.push(Cell::from(meas.seconds));
        }
        time.push_row(row);
    }
    let mut set = TableSet::new();
    set.push(time);
    set
}

/// Figure 5(d): multi-threaded CBAS-ND speedup (1/2/4/8 threads).
pub fn parallel_speedup(ctx: &ExperimentContext) -> TableSet {
    let registry = waso::registry();
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    let threads = [1usize, 2, 4, 8];
    let ks: Vec<usize> = match ctx.scale {
        waso_datasets::Scale::Smoke => vec![10],
        _ => vec![10, 20, 30],
    };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut time = Table::new(
        "fig5d",
        format!(
            "Figure 5(d): CBAS-ND execution time vs threads, seconds \
             (host has {cores} cores — the attainable ceiling; the paper used 40)"
        ),
        &[
            "k",
            "1 thread",
            "2 threads",
            "4 threads",
            "8 threads",
            "speedup@8",
        ],
    );
    // A heavier budget so the parallel section dominates.
    let budget = ctx.budget() * 4;
    let m = Some(ctx.harness_m(g.num_nodes()));
    for &k in &ks {
        let inst = WasoInstance::new(g.clone(), k).expect("k <= n");
        let mut secs = Vec::new();
        for &t in &threads {
            let spec = cbasnd_spec(budget, m).threads(t);
            let meas = measure_spec(&registry, &spec, &inst, ctx.seed);
            secs.push(meas.seconds);
        }
        let speedup = secs[0] / secs[3].max(1e-12);
        time.push_row(vec![
            Cell::from(k),
            Cell::from(secs[0]),
            Cell::from(secs[1]),
            Cell::from(secs[2]),
            Cell::from(secs[3]),
            Cell::from(speedup),
        ]);
    }
    let mut set = TableSet::new();
    set.push(time);
    set
}

/// Figures 5(e)+(f): time and quality vs total budget T.
pub fn vs_budget(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    budget_sweep(&g, 10, ctx, "fig5e", "fig5f", "Facebook-like")
}

/// Shared "time + quality vs T" sweep (Figures 5(e,f) and 7(e,f)).
/// Budget-insensitive roster members (DGreedy) are omitted — the paper's
/// T-axis figures only plot the sampling solvers.
pub(crate) fn budget_sweep(
    graph: &waso_graph::SocialGraph,
    k: usize,
    ctx: &ExperimentContext,
    id_time: &str,
    id_quality: &str,
    dataset: &str,
) -> TableSet {
    let registry = waso::registry();
    let inst = WasoInstance::new(graph.clone(), k).expect("k <= n");
    let m = Some(ctx.harness_m(graph.num_nodes()));

    let budgeted: Vec<&waso_algos::RegistryEntry> = registry
        .roster()
        .into_iter()
        .filter(|e| e.options.contains(&"budget"))
        .collect();
    let cols: Vec<String> = std::iter::once("T".to_string())
        .chain(budgeted.iter().map(|e| e.label.to_string()))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut time = Table::new(
        id_time,
        format!("execution time vs T, seconds ({dataset})"),
        &col_refs,
    );
    let mut quality = Table::new(
        id_quality,
        format!("solution quality vs T ({dataset})"),
        &col_refs,
    );

    for &t in &ctx.t_sweep() {
        let mut time_row = vec![Cell::from(t)];
        let mut quality_row = vec![Cell::from(t)];
        for entry in &budgeted {
            let spec = harness_spec(entry, t, STAGES, m);
            let meas = measure_spec_avg(&registry, &spec, &inst, ctx.seed, ctx.repeats);
            time_row.push(Cell::from(meas.seconds));
            quality_row.push(meas.quality.map(Cell::from).unwrap_or(Cell::Missing));
        }
        time.push_row(time_row);
        quality.push_row(quality_row);
    }
    let mut set = TableSet::new();
    set.push(time);
    set.push(quality);
    set
}

/// Figure 5(g): CBAS-ND quality vs smoothing weight w, k ∈ {10, 20, 30}.
pub fn smoothing_sweep(ctx: &ExperimentContext) -> TableSet {
    parameter_sweep(
        ctx,
        "fig5g",
        "Figure 5(g): CBAS-ND quality vs smoothing weight w",
        "w",
        &[0.1, 0.3, 0.5, 0.7, 0.9],
        |spec, w| spec.smoothing(w),
    )
}

/// Figure 5(h): CBAS-ND quality vs elite fraction ρ, k ∈ {10, 20, 30}.
pub fn rho_sweep(ctx: &ExperimentContext) -> TableSet {
    parameter_sweep(
        ctx,
        "fig5h",
        "Figure 5(h): CBAS-ND quality vs elite fraction rho",
        "rho",
        &[0.1, 0.3, 0.5, 0.7, 0.9],
        |spec, x| spec.rho(x),
    )
}

/// Shared CBAS-ND parameter sweep behind Figures 5(g) and 5(h): one spec
/// knob varied, quality per k.
fn parameter_sweep(
    ctx: &ExperimentContext,
    id: &str,
    title: &str,
    param: &str,
    values: &[f64],
    apply: impl Fn(SolverSpec, f64) -> SolverSpec,
) -> TableSet {
    let registry = waso::registry();
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    let ks: Vec<usize> = match ctx.scale {
        waso_datasets::Scale::Smoke => vec![10],
        _ => vec![10, 20, 30],
    };
    let cols: Vec<String> = std::iter::once(param.to_string())
        .chain(ks.iter().map(|k| format!("k={k}")))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut quality = Table::new(id, title, &col_refs);
    for &x in values {
        let mut row = vec![Cell::from(x)];
        for &k in &ks {
            let inst = WasoInstance::new(g.clone(), k).expect("k <= n");
            let spec = apply(
                cbasnd_spec(ctx.budget(), Some(ctx.harness_m(g.num_nodes()))),
                x,
            );
            let m = measure_spec_avg(&registry, &spec, &inst, ctx.seed, ctx.repeats);
            row.push(m.quality.map(Cell::from).unwrap_or(Cell::Missing));
        }
        quality.push_row(row);
    }
    let mut set = TableSet::new();
    set.push(quality);
    set
}

/// Figures 5(i)+(j): time and quality vs the number of start nodes m.
pub fn start_nodes_sweep(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    m_sweep(&g, 10, ctx, "fig5i", "fig5j", "Facebook-like")
}

/// Shared "time + quality vs m" sweep (Figures 5(i,j) and 7(c,d)), over
/// the roster members that take a start-node count.
pub(crate) fn m_sweep(
    graph: &waso_graph::SocialGraph,
    k: usize,
    ctx: &ExperimentContext,
    id_time: &str,
    id_quality: &str,
    dataset: &str,
) -> TableSet {
    let registry = waso::registry();
    let inst = WasoInstance::new(graph.clone(), k).expect("k <= n");

    let swept: Vec<&waso_algos::RegistryEntry> = registry
        .roster()
        .into_iter()
        .filter(|e| e.options.contains(&"start-nodes"))
        .collect();
    let cols: Vec<String> = std::iter::once("m".to_string())
        .chain(swept.iter().map(|e| e.label.to_string()))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut time = Table::new(
        id_time,
        format!("execution time vs m, seconds ({dataset})"),
        &col_refs,
    );
    let mut quality = Table::new(
        id_quality,
        format!("solution quality vs m ({dataset})"),
        &col_refs,
    );

    for &m in &ctx.m_sweep(graph.num_nodes(), k) {
        // The paper's stage budget T₁ is linear in m (pseudo-code line 4),
        // which is why Figure 5(i)'s time grows with m; mirror that.
        let budget = 100 * m as u64;
        let mut time_row = vec![Cell::from(m)];
        let mut quality_row = vec![Cell::from(m)];
        for entry in &swept {
            let spec = harness_spec(entry, budget, STAGES, Some(m));
            let meas = measure_spec_avg(&registry, &spec, &inst, ctx.seed, ctx.repeats);
            time_row.push(Cell::from(meas.seconds));
            quality_row.push(meas.quality.map(Cell::from).unwrap_or(Cell::Missing));
        }
        time.push_row(time_row);
        quality.push_row(quality_row);
    }
    let mut set = TableSet::new();
    set.push(time);
    set.push(quality);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_datasets::Scale;

    fn smoke() -> ExperimentContext {
        ExperimentContext::new(Scale::Smoke)
    }

    #[test]
    fn k_sweep_produces_both_tables_with_roster_columns() {
        let set = quality_time_vs_k(&smoke());
        assert_eq!(set.tables.len(), 2);
        assert_eq!(set.tables[0].id, "fig5a");
        assert_eq!(set.tables[1].id, "fig5b");
        assert_eq!(set.tables[1].rows.len(), smoke().k_sweep_facebook().len());
        // Columns derive from the registry roster.
        assert_eq!(
            set.tables[0].columns,
            vec!["k", "DGreedy", "CBAS", "RGreedy", "CBAS-ND"]
        );
    }

    #[test]
    fn neighbor_differentiation_beats_uniform_sampling_on_smoke() {
        // The mechanism check that must hold even at CI budgets: CE-guided
        // sampling (CBAS-ND) clearly outperforms uniform sampling (CBAS)
        // for the same T. The full paper ordering (CBAS-ND vs DGreedy etc.)
        // emerges at Small scale and is recorded in EXPERIMENTS.md.
        let set = quality_time_vs_k(&smoke());
        let q = &set.tables[1];
        let cbas_col = q.columns.iter().position(|c| c == "CBAS").unwrap();
        let nd_col = q.columns.iter().position(|c| c == "CBAS-ND").unwrap();
        let (mut nd_total, mut cbas_total) = (0.0, 0.0);
        for row in &q.rows {
            if let (Cell::Num(cb), Cell::Num(nd)) = (&row[cbas_col], &row[nd_col]) {
                cbas_total += cb;
                nd_total += nd;
            }
        }
        assert!(
            nd_total > cbas_total * 1.1,
            "CBAS-ND {nd_total:.2} should clearly beat CBAS {cbas_total:.2}"
        );
    }

    #[test]
    fn budget_sweep_rows_match_t_sweep() {
        let ctx = smoke();
        let set = vs_budget(&ctx);
        assert_eq!(set.tables[1].rows.len(), ctx.t_sweep().len());
        // DGreedy takes no budget — it must not appear on the T axis.
        assert!(!set.tables[0].columns.iter().any(|c| c == "DGreedy"));
    }

    #[test]
    fn parallel_speedup_reports_all_thread_counts() {
        let set = parallel_speedup(&smoke());
        let t = &set.tables[0];
        assert_eq!(t.columns.len(), 6);
        assert!(!t.rows.is_empty());
    }

    #[test]
    fn parameter_sweeps_have_expected_shape() {
        let ctx = smoke();
        let g_set = smoothing_sweep(&ctx);
        assert_eq!(g_set.tables[0].rows.len(), 5);
        let h_set = rho_sweep(&ctx);
        assert_eq!(h_set.tables[0].rows.len(), 5);
        let ij = start_nodes_sweep(&ctx);
        assert_eq!(ij.tables.len(), 2);
    }
}

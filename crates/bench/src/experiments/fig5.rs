//! Figure 5 — the Facebook evaluation (§5.3.1): ten panels sweeping group
//! size, network size, thread count, budget, smoothing, elite fraction and
//! start-node count.
//!
//! All solvers run with explicit `stages = 10` (the paper's stage-count
//! formula degenerates to r = 1 at realistic n; see
//! `waso_algos::ocba::derive_stages` and EXPERIMENTS.md).

use waso_algos::{
    Cbas, CbasConfig, CbasNd, CbasNdConfig, DGreedy, ParallelCbasNd, RGreedy, RGreedyConfig,
};
use waso_core::WasoInstance;
use waso_datasets::synthetic;

use crate::report::{Cell, Table, TableSet};
use crate::runner::{measure, measure_avg, ExperimentContext};

pub(crate) const STAGES: u32 = 10;

pub(crate) fn cbas_config(budget: u64, m: Option<usize>) -> CbasConfig {
    let mut c = CbasConfig::with_budget(budget);
    c.stages = Some(STAGES);
    c.num_start_nodes = m;
    c
}

pub(crate) fn cbasnd_config(budget: u64, m: Option<usize>) -> CbasNdConfig {
    let mut c = CbasNdConfig::with_budget(budget);
    c.base = cbas_config(budget, m);
    c
}

/// Shared "quality + time vs k" sweep used by Figures 5(a,b), 7(a,b),
/// 8(a,b): DGreedy / RGreedy / CBAS / CBAS-ND on one graph.
pub(crate) fn sweep_k(
    graph: &waso_graph::SocialGraph,
    ks: &[usize],
    ctx: &ExperimentContext,
    id_time: &str,
    id_quality: &str,
    dataset: &str,
) -> TableSet {
    let cols = ["k", "DGreedy", "CBAS", "RGreedy", "CBAS-ND"];
    let mut time = Table::new(
        id_time,
        format!("execution time vs k in seconds ({dataset})"),
        &cols,
    );
    let mut quality = Table::new(
        id_quality,
        format!("solution quality vs k ({dataset})"),
        &cols,
    );
    let budget = ctx.budget();

    let m = Some(ctx.harness_m(graph.num_nodes()));
    for &k in ks {
        let inst = WasoInstance::new(graph.clone(), k).expect("k <= n");
        let dg = measure(&mut DGreedy::new(), &inst, ctx.seed);
        let cb = measure_avg(
            &mut Cbas::new(cbas_config(budget, m)),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let nd = measure_avg(
            &mut CbasNd::new(cbasnd_config(budget, m)),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        // RGreedy only at small k — the paper aborts it beyond that
        // (12-hour timeouts, §5.3.1). Same budget, same start nodes.
        let rg = (k <= ctx.rgreedy_k_limit()).then(|| {
            let mut cfg = RGreedyConfig::with_budget(budget);
            cfg.num_start_nodes = m;
            measure_avg(&mut RGreedy::new(cfg), &inst, ctx.seed, ctx.repeats)
        });

        let q = |m: &crate::runner::Measurement| {
            m.quality.map(Cell::from).unwrap_or(Cell::Missing)
        };
        let rg_time = rg.as_ref().map(|m| Cell::from(m.seconds)).unwrap_or(Cell::Missing);
        let rg_quality = rg.as_ref().map(q).unwrap_or(Cell::Missing);
        time.push_row(vec![
            Cell::from(k),
            Cell::from(dg.seconds),
            Cell::from(cb.seconds),
            rg_time,
            Cell::from(nd.seconds),
        ]);
        quality.push_row(vec![
            Cell::from(k),
            q(&dg),
            q(&cb),
            rg_quality,
            q(&nd),
        ]);
    }

    let mut set = TableSet::new();
    set.push(time);
    set.push(quality);
    set
}

/// Figures 5(a)+(b): time and quality vs group size on Facebook-like.
pub fn quality_time_vs_k(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    sweep_k(
        &g,
        &ctx.k_sweep_facebook(),
        ctx,
        "fig5a",
        "fig5b",
        "Facebook-like",
    )
}

/// Figure 5(c): execution time vs network size (k = 10).
pub fn time_vs_n(ctx: &ExperimentContext) -> TableSet {
    let cols = ["n", "DGreedy", "CBAS", "RGreedy", "CBAS-ND"];
    let mut time = Table::new(
        "fig5c",
        "Figure 5(c): execution time vs n, k=10 (Facebook-like)",
        &cols,
    );
    let k = 10;
    for &n in &ctx.n_sweep() {
        let g = synthetic::facebook_like_n(n, ctx.seed ^ n as u64);
        let inst = WasoInstance::new(g, k).expect("n >= 10");
        let budget = ctx.budget();
        let m = Some(ctx.harness_m(n));
        let dg = measure(&mut DGreedy::new(), &inst, ctx.seed);
        let cb = measure(&mut Cbas::new(cbas_config(budget, m)), &inst, ctx.seed);
        let nd = measure(
            &mut CbasNd::new(cbasnd_config(budget, m)),
            &inst,
            ctx.seed,
        );
        // RGreedy scales poorly in n too; cap it at 10k nodes.
        let rg = (n <= 10_000).then(|| {
            let mut cfg = RGreedyConfig::with_budget(budget);
            cfg.num_start_nodes = m;
            measure(&mut RGreedy::new(cfg), &inst, ctx.seed)
        });
        time.push_row(vec![
            Cell::from(n),
            Cell::from(dg.seconds),
            Cell::from(cb.seconds),
            rg.map(|m| Cell::from(m.seconds)).unwrap_or(Cell::Missing),
            Cell::from(nd.seconds),
        ]);
    }
    let mut set = TableSet::new();
    set.push(time);
    set
}

/// Figure 5(d): multi-threaded CBAS-ND speedup (1/2/4/8 threads).
pub fn parallel_speedup(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    let threads = [1usize, 2, 4, 8];
    let ks: Vec<usize> = match ctx.scale {
        waso_datasets::Scale::Smoke => vec![10],
        _ => vec![10, 20, 30],
    };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut time = Table::new(
        "fig5d",
        format!(
            "Figure 5(d): CBAS-ND execution time vs threads, seconds \
             (host has {cores} cores — the attainable ceiling; the paper used 40)"
        ),
        &["k", "1 thread", "2 threads", "4 threads", "8 threads", "speedup@8"],
    );
    // A heavier budget so the parallel section dominates.
    let budget = ctx.budget() * 4;
    let m = Some(ctx.harness_m(g.num_nodes()));
    for &k in &ks {
        let inst = WasoInstance::new(g.clone(), k).expect("k <= n");
        let mut secs = Vec::new();
        for &t in &threads {
            let meas = measure(
                &mut ParallelCbasNd::new(cbasnd_config(budget, m), t),
                &inst,
                ctx.seed,
            );
            secs.push(meas.seconds);
        }
        let speedup = secs[0] / secs[3].max(1e-12);
        time.push_row(vec![
            Cell::from(k),
            Cell::from(secs[0]),
            Cell::from(secs[1]),
            Cell::from(secs[2]),
            Cell::from(secs[3]),
            Cell::from(speedup),
        ]);
    }
    let mut set = TableSet::new();
    set.push(time);
    set
}

/// Figures 5(e)+(f): time and quality vs total budget T.
pub fn vs_budget(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    budget_sweep(&g, 10, ctx, "fig5e", "fig5f", "Facebook-like")
}

/// Shared "time + quality vs T" sweep (Figures 5(e,f) and 7(e,f)).
pub(crate) fn budget_sweep(
    graph: &waso_graph::SocialGraph,
    k: usize,
    ctx: &ExperimentContext,
    id_time: &str,
    id_quality: &str,
    dataset: &str,
) -> TableSet {
    let cols = ["T", "CBAS", "RGreedy", "CBAS-ND"];
    let mut time = Table::new(id_time, format!("execution time vs T, seconds ({dataset})"), &cols);
    let mut quality = Table::new(id_quality, format!("solution quality vs T ({dataset})"), &cols);
    let inst = WasoInstance::new(graph.clone(), k).expect("k <= n");
    let m = Some(ctx.harness_m(graph.num_nodes()));
    for &t in &ctx.t_sweep() {
        let cb = measure_avg(
            &mut Cbas::new(cbas_config(t, m)),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let nd = measure_avg(
            &mut CbasNd::new(cbasnd_config(t, m)),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let rg = measure_avg(
            &mut RGreedy::new({
                let mut cfg = RGreedyConfig::with_budget(t);
                cfg.num_start_nodes = m;
                cfg
            }),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let q = |m: &crate::runner::Measurement| {
            m.quality.map(Cell::from).unwrap_or(Cell::Missing)
        };
        time.push_row(vec![
            Cell::from(t),
            Cell::from(cb.seconds),
            Cell::from(rg.seconds),
            Cell::from(nd.seconds),
        ]);
        quality.push_row(vec![Cell::from(t), q(&cb), q(&rg), q(&nd)]);
    }
    let mut set = TableSet::new();
    set.push(time);
    set.push(quality);
    set
}

/// Figure 5(g): CBAS-ND quality vs smoothing weight w, k ∈ {10, 20, 30}.
pub fn smoothing_sweep(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    let ws = [0.1, 0.3, 0.5, 0.7, 0.9];
    let ks: Vec<usize> = match ctx.scale {
        waso_datasets::Scale::Smoke => vec![10],
        _ => vec![10, 20, 30],
    };
    let cols: Vec<String> = std::iter::once("w".to_string())
        .chain(ks.iter().map(|k| format!("k={k}")))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut quality = Table::new(
        "fig5g",
        "Figure 5(g): CBAS-ND quality vs smoothing weight w",
        &col_refs,
    );
    for &w in &ws {
        let mut row = vec![Cell::from(w)];
        for &k in &ks {
            let inst = WasoInstance::new(g.clone(), k).expect("k <= n");
            let mut cfg = cbasnd_config(ctx.budget(), Some(ctx.harness_m(g.num_nodes())));
            cfg.smoothing = w;
            let m = measure_avg(&mut CbasNd::new(cfg), &inst, ctx.seed, ctx.repeats);
            row.push(m.quality.map(Cell::from).unwrap_or(Cell::Missing));
        }
        quality.push_row(row);
    }
    let mut set = TableSet::new();
    set.push(quality);
    set
}

/// Figure 5(h): CBAS-ND quality vs elite fraction ρ, k ∈ {10, 20, 30}.
pub fn rho_sweep(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    let rhos = [0.1, 0.3, 0.5, 0.7, 0.9];
    let ks: Vec<usize> = match ctx.scale {
        waso_datasets::Scale::Smoke => vec![10],
        _ => vec![10, 20, 30],
    };
    let cols: Vec<String> = std::iter::once("rho".to_string())
        .chain(ks.iter().map(|k| format!("k={k}")))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut quality = Table::new(
        "fig5h",
        "Figure 5(h): CBAS-ND quality vs elite fraction rho",
        &col_refs,
    );
    for &rho in &rhos {
        let mut row = vec![Cell::from(rho)];
        for &k in &ks {
            let inst = WasoInstance::new(g.clone(), k).expect("k <= n");
            let mut cfg = cbasnd_config(ctx.budget(), Some(ctx.harness_m(g.num_nodes())));
            cfg.rho = rho;
            let m = measure_avg(&mut CbasNd::new(cfg), &inst, ctx.seed, ctx.repeats);
            row.push(m.quality.map(Cell::from).unwrap_or(Cell::Missing));
        }
        quality.push_row(row);
    }
    let mut set = TableSet::new();
    set.push(quality);
    set
}

/// Figures 5(i)+(j): time and quality vs the number of start nodes m.
pub fn start_nodes_sweep(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    m_sweep(&g, 10, ctx, "fig5i", "fig5j", "Facebook-like")
}

/// Shared "time + quality vs m" sweep (Figures 5(i,j) and 7(c,d)).
pub(crate) fn m_sweep(
    graph: &waso_graph::SocialGraph,
    k: usize,
    ctx: &ExperimentContext,
    id_time: &str,
    id_quality: &str,
    dataset: &str,
) -> TableSet {
    let cols = ["m", "CBAS", "RGreedy", "CBAS-ND"];
    let mut time = Table::new(id_time, format!("execution time vs m, seconds ({dataset})"), &cols);
    let mut quality = Table::new(id_quality, format!("solution quality vs m ({dataset})"), &cols);
    let inst = WasoInstance::new(graph.clone(), k).expect("k <= n");
    for &m in &ctx.m_sweep(graph.num_nodes(), k) {
        // The paper's stage budget T₁ is linear in m (pseudo-code line 4),
        // which is why Figure 5(i)'s time grows with m; mirror that.
        let budget = 100 * m as u64;
        let cb = measure_avg(
            &mut Cbas::new(cbas_config(budget, Some(m))),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let nd = measure_avg(
            &mut CbasNd::new(cbasnd_config(budget, Some(m))),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let rg = measure_avg(
            &mut RGreedy::new(RGreedyConfig {
                budget,
                num_start_nodes: Some(m),
                start_override: None,
                include_base_willingness: false,
            }),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let q = |meas: &crate::runner::Measurement| {
            meas.quality.map(Cell::from).unwrap_or(Cell::Missing)
        };
        time.push_row(vec![
            Cell::from(m),
            Cell::from(cb.seconds),
            Cell::from(rg.seconds),
            Cell::from(nd.seconds),
        ]);
        quality.push_row(vec![Cell::from(m), q(&cb), q(&rg), q(&nd)]);
    }
    let mut set = TableSet::new();
    set.push(time);
    set.push(quality);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_datasets::Scale;

    fn smoke() -> ExperimentContext {
        ExperimentContext::new(Scale::Smoke)
    }

    #[test]
    fn k_sweep_produces_both_tables() {
        let set = quality_time_vs_k(&smoke());
        assert_eq!(set.tables.len(), 2);
        assert_eq!(set.tables[0].id, "fig5a");
        assert_eq!(set.tables[1].id, "fig5b");
        assert_eq!(set.tables[1].rows.len(), smoke().k_sweep_facebook().len());
    }

    #[test]
    fn neighbor_differentiation_beats_uniform_sampling_on_smoke() {
        // The mechanism check that must hold even at CI budgets: CE-guided
        // sampling (CBAS-ND) clearly outperforms uniform sampling (CBAS)
        // for the same T. The full paper ordering (CBAS-ND vs DGreedy etc.)
        // emerges at Small scale and is recorded in EXPERIMENTS.md.
        let set = quality_time_vs_k(&smoke());
        let q = &set.tables[1];
        let (mut nd_total, mut cbas_total) = (0.0, 0.0);
        for row in &q.rows {
            if let (Cell::Num(cb), Cell::Num(nd)) = (&row[2], &row[4]) {
                cbas_total += cb;
                nd_total += nd;
            }
        }
        assert!(
            nd_total > cbas_total * 1.1,
            "CBAS-ND {nd_total:.2} should clearly beat CBAS {cbas_total:.2}"
        );
    }

    #[test]
    fn budget_sweep_rows_match_t_sweep() {
        let ctx = smoke();
        let set = vs_budget(&ctx);
        assert_eq!(set.tables[1].rows.len(), ctx.t_sweep().len());
    }

    #[test]
    fn parallel_speedup_reports_all_thread_counts() {
        let set = parallel_speedup(&smoke());
        let t = &set.tables[0];
        assert_eq!(t.columns.len(), 6);
        assert!(!t.rows.is_empty());
    }

    #[test]
    fn parameter_sweeps_have_expected_shape() {
        let ctx = smoke();
        let g_set = smoothing_sweep(&ctx);
        assert_eq!(g_set.tables[0].rows.len(), 5);
        let h_set = rho_sweep(&ctx);
        assert_eq!(h_set.tables[0].rows.len(), 5);
        let ij = start_nodes_sweep(&ctx);
        assert_eq!(ij.tables.len(), 2);
    }
}

//! Figure 9 — optimality gaps against the IP (a, b) and the WASO-dis
//! separate-groups variant (c, d) (§5.3.4).
//!
//! (a, b): on small DBLP extracts (n ∈ {25, 100, 500}, k = 10) the paper
//! solves the Appendix-B IP with CPLEX and shows CBAS-ND within a whisker
//! of the optimum at ~10⁻²× the time. Our IP stand-in is the `exact`
//! registry entry (branch-and-bound), primed with CBAS-ND's incumbent via
//! the uniform `Solver::warm_start` hook; runs that hit the expansion cap
//! report the best group found — the same caveat the paper's 10⁵-second
//! CPLEX runs carry.
//!
//! (c, d): the separate-groups scenario drops the connectivity constraint
//! (§2.2). We solve WASO-dis natively (footnote 3's "simple modification");
//! Theorem 2's virtual-node reduction is validated separately in the
//! integration tests.

use waso_algos::SolverSpec;
use waso_core::WasoInstance;
use waso_datasets::synthetic;
use waso_graph::{subgraph, NodeId};

use super::fig5::{cbasnd_spec, STAGES};
use crate::report::{Cell, Table, TableSet};
use crate::runner::{measure, measure_spec_avg, roster_specs, ExperimentContext};

/// Figures 9(a)+(b): quality and time vs n, IP (exact) vs everyone.
pub fn ip_comparison(ctx: &ExperimentContext) -> TableSet {
    let registry = waso::registry();
    let sizes: &[usize] = match ctx.scale {
        waso_datasets::Scale::Smoke => &[25, 60],
        _ => &[25, 100, 500],
    };
    let k = 10;

    // Columns: n, the exact entry's label, the roster labels, a note.
    let ip_label = registry.get("exact").expect("registered").label;
    let roster_labels: Vec<String> = registry
        .roster()
        .iter()
        .map(|e| e.label.to_string())
        .collect();
    let cols: Vec<String> = std::iter::once("n".to_string())
        .chain(std::iter::once(ip_label.to_string()))
        .chain(roster_labels)
        .chain(std::iter::once(format!("{ip_label} note")))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut quality = Table::new(
        "fig9a",
        "Figure 9(a): solution quality vs n, exact IP vs heuristics (k=10)",
        &col_refs,
    );
    let mut time = Table::new(
        "fig9b",
        "Figure 9(b): execution time vs n, seconds (k=10)",
        &col_refs,
    );

    // Host graph to extract "small real datasets" from (§5.3.4).
    let host = synthetic::dblp_like(ctx.scale, ctx.seed ^ 0x99);
    let budget = ctx.budget();

    for &n in sizes {
        // Ego extract of the requested size around a well-connected centre.
        let center = NodeId((ctx.seed as u32 ^ 0x5A5A) % host.num_nodes() as u32);
        let extract = subgraph::ego_network(&host, center, 6, n);
        let g = extract.graph;
        if g.num_nodes() < k {
            continue;
        }
        let inst = WasoInstance::new(g, k).expect("extract supports k");
        let m = Some(ctx.harness_m(inst.graph().num_nodes()));

        let mut q_cells = Vec::new();
        let mut t_cells = Vec::new();
        for solver in roster_specs(&registry, budget, STAGES, m) {
            let meas = measure_spec_avg(
                &registry,
                &solver.spec,
                &inst,
                ctx.seed,
                solver.repeats(ctx),
            );
            q_cells.push(meas.quality.map(Cell::from).unwrap_or(Cell::Missing));
            t_cells.push(Cell::from(meas.seconds));
        }

        // Exact, primed with CBAS-ND's solution through the uniform
        // warm-start hook (legitimate — an incumbent only prunes).
        let incumbent = registry
            .build(&cbasnd_spec(budget, m))
            .expect("cbas-nd spec is registry-valid")
            .solve_seeded(&inst, ctx.seed)
            .ok();
        let mut exact = registry
            .build(&SolverSpec::exact().cap(ctx.exact_cap()))
            .expect("exact spec is registry-valid");
        if let Some(inc) = &incumbent {
            exact.warm_start(&inc.group);
        }
        let exact_meas = measure(exact.as_mut(), &inst, ctx.seed);
        let (ip_q, ip_note) = match exact_meas.quality {
            Some(q) => (
                Cell::from(q),
                if exact_meas.truncated {
                    Cell::from("capped")
                } else {
                    Cell::from("optimal")
                },
            ),
            None => (Cell::Missing, Cell::from("infeasible")),
        };

        let n_cell = Cell::from(inst.graph().num_nodes());
        let mut q_row = vec![n_cell.clone(), ip_q];
        q_row.extend(q_cells);
        q_row.push(ip_note.clone());
        quality.push_row(q_row);

        let mut t_row = vec![n_cell, Cell::from(exact_meas.seconds)];
        t_row.extend(t_cells);
        t_row.push(ip_note);
        time.push_row(t_row);
    }

    let mut set = TableSet::new();
    set.push(quality);
    set.push(time);
    set
}

/// Figures 9(c)+(d): WASO-dis (no connectivity constraint) time and
/// quality vs k on Facebook-like.
pub fn waso_dis(ctx: &ExperimentContext) -> TableSet {
    let registry = waso::registry();
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    let budget = ctx.budget();
    let m = Some(ctx.harness_m(g.num_nodes()));
    let roster = roster_specs(&registry, budget, STAGES, m);

    let cols: Vec<String> = std::iter::once("k".to_string())
        .chain(roster.iter().map(|s| s.entry.label.to_string()))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut time = Table::new(
        "fig9c",
        "Figure 9(c): WASO-dis execution time vs k, seconds",
        &col_refs,
    );
    let mut quality = Table::new(
        "fig9d",
        "Figure 9(d): WASO-dis solution quality vs k",
        &col_refs,
    );

    for &k in &ctx.k_sweep_facebook() {
        let inst = WasoInstance::without_connectivity(g.clone(), k).expect("k <= n");
        let mut time_row = vec![Cell::from(k)];
        let mut quality_row = vec![Cell::from(k)];
        for solver in &roster {
            // Costly solvers price every node in V at every step here (the
            // paper: "computationally intractable", 24-hour timeouts past
            // k = 20) — run them only at the smallest k, with a tiny budget.
            if solver.entry.costly && k > 20 {
                time_row.push(Cell::Missing);
                quality_row.push(Cell::Missing);
                continue;
            }
            let (spec, repeats) = if solver.entry.costly {
                (solver.spec.clone().budget(budget.min(60)), 1)
            } else {
                (solver.spec.clone(), solver.repeats(ctx))
            };
            let meas = measure_spec_avg(&registry, &spec, &inst, ctx.seed, repeats);
            time_row.push(Cell::from(meas.seconds));
            quality_row.push(meas.quality.map(Cell::from).unwrap_or(Cell::Missing));
        }
        time.push_row(time_row);
        quality.push_row(quality_row);
    }

    let mut set = TableSet::new();
    set.push(time);
    set.push(quality);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_datasets::Scale;

    #[test]
    fn exact_dominates_heuristics() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = ip_comparison(&ctx);
        let quality = &set.tables[0];
        assert!(!quality.rows.is_empty());
        let note_col = quality.columns.len() - 1;
        for row in &quality.rows {
            let note = match &row[note_col] {
                Cell::Text(s) => s.clone(),
                _ => String::new(),
            };
            if note != "optimal" {
                continue; // capped runs carry no dominance guarantee
            }
            let ip = match &row[1] {
                Cell::Num(x) => *x,
                _ => continue,
            };
            #[allow(clippy::needless_range_loop)] // col is the semantic axis
            for col in 2..note_col {
                if let Cell::Num(h) = &row[col] {
                    assert!(ip >= h - 1e-6, "IP {ip} must dominate column {col} = {h}");
                }
            }
        }
    }

    #[test]
    fn waso_dis_measures_the_full_sweep() {
        // Every roster solver produces a quality number at the smallest k
        // (where even the cost-capped ones run), and the sweep covers the
        // full k axis. (Quality *comparisons* against connected WASO are
        // not asserted: at a fixed sampling budget the much larger
        // unconstrained search space can legitimately sample worse, even
        // though its optimum dominates — the optimum-level dominance is
        // covered by the scenario integration tests.)
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = waso_dis(&ctx);
        let quality = &set.tables[1];
        assert_eq!(quality.rows.len(), ctx.k_sweep_facebook().len());
        for cell in &quality.rows[0][1..] {
            assert!(matches!(cell, Cell::Num(_)), "first row fully measured");
        }
    }

    #[test]
    fn tables_share_the_roster_columns() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = waso_dis(&ctx);
        assert_eq!(set.tables[0].columns, set.tables[1].columns);
        assert!(set.tables[0].columns.iter().any(|c| c == "CBAS-ND"));
    }
}

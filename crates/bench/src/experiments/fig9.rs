//! Figure 9 — optimality gaps against the IP (a, b) and the WASO-dis
//! separate-groups variant (c, d) (§5.3.4).
//!
//! (a, b): on small DBLP extracts (n ∈ {25, 100, 500}, k = 10) the paper
//! solves the Appendix-B IP with CPLEX and shows CBAS-ND within a whisker
//! of the optimum at ~10⁻²× the time. Our IP stand-in is the
//! branch-and-bound ([`waso_exact::BranchBound`], primed with CBAS-ND's
//! incumbent); runs that hit the expansion cap are flagged `capped` and
//! report the best bound found — the same caveat the paper's 10⁵-second
//! CPLEX runs carry.
//!
//! (c, d): the separate-groups scenario drops the connectivity constraint
//! (§2.2). We solve WASO-dis natively (footnote 3's "simple modification");
//! Theorem 2's virtual-node reduction is validated separately in the
//! integration tests.

use waso_algos::{Cbas, CbasNd, DGreedy, RGreedy, RGreedyConfig, Solver};
use waso_core::WasoInstance;
use waso_datasets::synthetic;
use waso_exact::BranchBound;
use waso_graph::{subgraph, NodeId};

use super::fig5::{cbas_config, cbasnd_config};
use crate::report::{Cell, Table, TableSet};
use crate::runner::{measure, measure_avg, ExperimentContext};

/// Figures 9(a)+(b): quality and time vs n, IP (exact) vs everyone.
pub fn ip_comparison(ctx: &ExperimentContext) -> TableSet {
    let sizes: &[usize] = match ctx.scale {
        waso_datasets::Scale::Smoke => &[25, 60],
        _ => &[25, 100, 500],
    };
    let k = 10;
    let cols = ["n", "IP", "DGreedy", "RGreedy", "CBAS", "CBAS-ND", "IP note"];
    let mut quality = Table::new(
        "fig9a",
        "Figure 9(a): solution quality vs n, exact IP vs heuristics (k=10)",
        &cols,
    );
    let mut time = Table::new(
        "fig9b",
        "Figure 9(b): execution time vs n, seconds (k=10)",
        &cols,
    );

    // Host graph to extract "small real datasets" from (§5.3.4).
    let host = synthetic::dblp_like(ctx.scale, ctx.seed ^ 0x99);
    let budget = ctx.budget();

    for &n in sizes {
        // Ego extract of the requested size around a well-connected centre.
        let center = NodeId((ctx.seed as u32 ^ 0x5A5A) % host.num_nodes() as u32);
        let extract = subgraph::ego_network(&host, center, 6, n);
        let g = extract.graph;
        if g.num_nodes() < k {
            continue;
        }
        let inst = WasoInstance::new(g, k).expect("extract supports k");
        let m = Some(ctx.harness_m(inst.graph().num_nodes()));

        let dg = measure(&mut DGreedy::new(), &inst, ctx.seed);
        let cb = measure_avg(
            &mut Cbas::new(cbas_config(budget, m)),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let nd = measure_avg(
            &mut CbasNd::new(cbasnd_config(budget, m)),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let rg = measure_avg(
            &mut RGreedy::new({
                let mut cfg = RGreedyConfig::with_budget(budget);
                cfg.num_start_nodes = m;
                cfg
            }),
            &inst,
            ctx.seed,
            ctx.repeats,
        );

        // Exact: primed with CBAS-ND's solution (legitimate — only prunes).
        let incumbent = CbasNd::new(cbasnd_config(budget, m))
            .solve_seeded(&inst, ctx.seed)
            .ok();
        let t0 = std::time::Instant::now();
        let exact = BranchBound::with_cap(ctx.exact_cap())
            .solve(&inst, incumbent.as_ref().map(|r| &r.group));
        let exact_secs = t0.elapsed().as_secs_f64();

        let (ip_q, ip_note) = match &exact {
            Some(res) => (
                Cell::from(res.group.willingness()),
                if res.optimal {
                    Cell::from("optimal")
                } else {
                    Cell::from("capped")
                },
            ),
            None => (Cell::Missing, Cell::from("infeasible")),
        };
        let q = |m: &crate::runner::Measurement| {
            m.quality.map(Cell::from).unwrap_or(Cell::Missing)
        };
        quality.push_row(vec![
            Cell::from(inst.graph().num_nodes()),
            ip_q,
            q(&dg),
            q(&rg),
            q(&cb),
            q(&nd),
            ip_note.clone(),
        ]);
        time.push_row(vec![
            Cell::from(inst.graph().num_nodes()),
            Cell::from(exact_secs),
            Cell::from(dg.seconds),
            Cell::from(rg.seconds),
            Cell::from(cb.seconds),
            Cell::from(nd.seconds),
            ip_note,
        ]);
    }

    let mut set = TableSet::new();
    set.push(quality);
    set.push(time);
    set
}

/// Figures 9(c)+(d): WASO-dis (no connectivity constraint) time and
/// quality vs k on Facebook-like.
pub fn waso_dis(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    let cols = ["k", "DGreedy", "CBAS", "RGreedy", "CBAS-ND"];
    let mut time = Table::new(
        "fig9c",
        "Figure 9(c): WASO-dis execution time vs k, seconds",
        &cols,
    );
    let mut quality = Table::new(
        "fig9d",
        "Figure 9(d): WASO-dis solution quality vs k",
        &cols,
    );
    let budget = ctx.budget();

    let m = Some(ctx.harness_m(g.num_nodes()));
    for &k in &ctx.k_sweep_facebook() {
        let inst = WasoInstance::without_connectivity(g.clone(), k).expect("k <= n");
        let dg = measure(&mut DGreedy::new(), &inst, ctx.seed);
        let cb = measure_avg(
            &mut Cbas::new(cbas_config(budget, m)),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        let nd = measure_avg(
            &mut CbasNd::new(cbasnd_config(budget, m)),
            &inst,
            ctx.seed,
            ctx.repeats,
        );
        // RGreedy prices every node in V at every step here (the paper:
        // "computationally intractable", 24-hour timeouts past k = 20) —
        // run it only at the smallest k.
        let rg = (k <= 20).then(|| {
            measure(
                &mut RGreedy::new(RGreedyConfig::with_budget(budget.min(60))),
                &inst,
                ctx.seed,
            )
        });
        let q = |m: &crate::runner::Measurement| {
            m.quality.map(Cell::from).unwrap_or(Cell::Missing)
        };
        time.push_row(vec![
            Cell::from(k),
            Cell::from(dg.seconds),
            Cell::from(cb.seconds),
            rg.as_ref().map(|m| Cell::from(m.seconds)).unwrap_or(Cell::Missing),
            Cell::from(nd.seconds),
        ]);
        quality.push_row(vec![
            Cell::from(k),
            q(&dg),
            q(&cb),
            rg.as_ref().map(q).unwrap_or(Cell::Missing),
            q(&nd),
        ]);
    }

    let mut set = TableSet::new();
    set.push(time);
    set.push(quality);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_datasets::Scale;

    #[test]
    fn exact_dominates_heuristics() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = ip_comparison(&ctx);
        let quality = &set.tables[0];
        assert!(!quality.rows.is_empty());
        for row in &quality.rows {
            let note = match &row[6] {
                Cell::Text(s) => s.clone(),
                _ => String::new(),
            };
            if note != "optimal" {
                continue; // capped runs carry no dominance guarantee
            }
            let ip = match &row[1] {
                Cell::Num(x) => *x,
                _ => continue,
            };
            #[allow(clippy::needless_range_loop)] // col is the semantic axis
            for col in 2..=5 {
                if let Cell::Num(h) = &row[col] {
                    assert!(
                        ip >= h - 1e-6,
                        "IP {ip} must dominate column {col} = {h}"
                    );
                }
            }
        }
    }

    #[test]
    fn waso_dis_tables_cover_the_sweep() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = waso_dis(&ctx);
        assert_eq!(set.tables[0].id, "fig9c");
        assert_eq!(set.tables[1].id, "fig9d");
        assert_eq!(set.tables[1].rows.len(), ctx.k_sweep_facebook().len());
    }

    #[test]
    fn waso_dis_solutions_are_valid_and_comparable() {
        // Dropping the connectivity constraint enlarges the *optimum*, but
        // the unconstrained search space (candidates = all of V) is much
        // harder to sample, so found quality may lag at CI budgets — the
        // paper itself reports weaker solver separation here (§5.3.4). We
        // assert validity plus a sane quality scale.
        let ctx = ExperimentContext::new(Scale::Smoke);
        let g = synthetic::facebook_like(ctx.scale, ctx.seed);
        let k = 10;
        let free = WasoInstance::without_connectivity(g.clone(), k).unwrap();
        let mut solver = CbasNd::new(cbasnd_config(ctx.budget(), Some(10)));
        let res = solver.solve_seeded(&free, 1).unwrap();
        assert_eq!(res.group.len(), k);
        assert!(res.group.willingness() > 0.0);
        // DGreedy's unconstrained pick is a lower bound any decent budget
        // should approach within an order of magnitude.
        let dg = DGreedy::new().solve_seeded(&free, 1).unwrap();
        assert!(res.group.willingness() > dg.group.willingness() * 0.1);
    }
}

//! Figure 8 — the Flickr evaluation (§5.3.3), the scalability check.
//!
//! Flickr is the largest network (1.85M nodes at paper scale) with
//! Facebook-like density (mean degree ≈ 24.5) and *asymmetric* tightness
//! (directed contacts). The paper's findings to reproduce: CBAS-ND beats
//! DGreedy by ~31% at k = 50; the time curves resemble Facebook's (not
//! DBLP's) because the densities match; RGreedy supports an even smaller
//! maximum k than on DBLP.

use waso_datasets::synthetic;

use super::fig5::sweep_k;
use crate::report::TableSet;
use crate::runner::ExperimentContext;

/// Figures 8(a)+(b): quality and time vs group size on Flickr-like.
pub fn quality_time_vs_k(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::flickr_like(ctx.scale, ctx.seed);
    let mut set = sweep_k(
        &g,
        &ctx.k_sweep_sparse(),
        ctx,
        "fig8b",
        "fig8a",
        "Flickr-like",
    );
    // Paper order: 8(a) quality, 8(b) time.
    set.tables.swap(0, 1);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;
    use waso_datasets::Scale;

    #[test]
    fn flickr_tables_are_shaped_like_the_paper() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = quality_time_vs_k(&ctx);
        assert_eq!(set.tables[0].id, "fig8a");
        assert_eq!(set.tables[1].id, "fig8b");
        assert_eq!(set.tables[0].rows.len(), ctx.k_sweep_sparse().len());
    }

    #[test]
    fn quality_is_recorded_for_all_roster_solvers() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = quality_time_vs_k(&ctx);
        let t = &set.tables[0];
        for label in ["DGreedy", "CBAS", "CBAS-ND"] {
            // These solvers always produce values on the connected
            // Flickr-like graph (RGreedy may be cost-capped).
            let col = t.columns.iter().position(|c| c == label).unwrap();
            for row in &t.rows {
                assert!(matches!(row[col], Cell::Num(_)), "{label}");
            }
        }
    }
}

//! Figure 4 — the user study (§5.2), simulated.
//!
//! 137 participants each planned activities over ego networks from their
//! own Facebook accounts; the figures compare manual coordination,
//! CBAS-ND, and the CPLEX optimum ("IP"), with (`-i`) and without (`-ni`)
//! the initiator pinned into the group. Here the participants are
//! [`waso_datasets::ManualPlanner`] simulations and the IP optimum comes
//! from exhaustive enumeration (the instances are ≤ 30 nodes). Manual
//! "execution time" is the planner's *modeled human seconds*; solver times
//! are wall-clock.

use waso_algos::SolverSpec;
use waso_datasets::userstudy::{self, ManualPlanner, Opinion};
use waso_exact::exhaustive_optimum_where;

use crate::report::{Cell, Table, TableSet};
use crate::runner::ExperimentContext;

/// The study's solver spec: a small budget suits ≤ 30-node instances
/// (§5.2 runs interactively); the `-i` mode pins the initiator as the
/// start node.
fn study_spec(pin_initiator: Option<waso_graph::NodeId>) -> SolverSpec {
    let mut spec = SolverSpec::cbas_nd().budget(100).stages(3);
    if let Some(v) = pin_initiator {
        spec = spec.starts([v]);
    }
    spec
}

/// One participant × one problem, all six measurements of Figures 4(b)–(e).
struct ProblemOutcome {
    manual_i: f64,
    manual_i_secs: f64,
    cbasnd_i: f64,
    cbasnd_i_secs: f64,
    ip_i: f64,
    ip_i_secs: f64,
    manual_ni: f64,
    manual_ni_secs: f64,
    cbasnd_ni: f64,
    cbasnd_ni_secs: f64,
    ip_ni: f64,
    ip_ni_secs: f64,
}

fn run_problem(n: usize, k: usize, seed: u64) -> Option<ProblemOutcome> {
    let problem = userstudy::study_problem(n, k, seed);
    let inst = &problem.instance;
    if inst.graph().num_nodes() < k {
        return None;
    }
    let initiator = problem.initiator;
    let planner = ManualPlanner::new();

    // Manual, initiator pinned.
    let m_i = planner.plan(inst, Some(initiator), seed ^ 0x11);
    // Manual, free choice.
    let m_ni = planner.plan(inst, None, seed ^ 0x22);
    let (m_i_group, m_ni_group) = (m_i.group?, m_ni.group?);

    // CBAS-ND, both modes (wall-clock measured), via the registry.
    let registry = waso::registry();
    let t0 = std::time::Instant::now();
    let c_i = registry
        .build(&study_spec(Some(initiator)))
        .expect("study spec is registry-valid")
        .solve_seeded(inst, seed)
        .ok()?;
    let c_i_secs = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let c_ni = registry
        .build(&study_spec(None))
        .expect("study spec is registry-valid")
        .solve_seeded(inst, seed)
        .ok()?;
    let c_ni_secs = t0.elapsed().as_secs_f64();

    // Exact optima (the paper's IP / CPLEX role).
    let t0 = std::time::Instant::now();
    let ip_i = exhaustive_optimum_where(inst, |nodes| nodes.contains(&initiator))?;
    let ip_i_secs = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let ip_ni = exhaustive_optimum_where(inst, |_| true)?;
    let ip_ni_secs = t0.elapsed().as_secs_f64();

    Some(ProblemOutcome {
        manual_i: m_i_group.willingness(),
        manual_i_secs: m_i.modeled_seconds,
        cbasnd_i: c_i.group.willingness(),
        cbasnd_i_secs: c_i_secs,
        ip_i: ip_i.willingness(),
        ip_i_secs,
        manual_ni: m_ni_group.willingness(),
        manual_ni_secs: m_ni.modeled_seconds,
        cbasnd_ni: c_ni.group.willingness(),
        cbasnd_ni_secs: c_ni_secs,
        ip_ni: ip_ni.willingness(),
        ip_ni_secs,
    })
}

/// Averages outcomes over the simulated participants for one `(n, k)`.
fn averaged(n: usize, k: usize, ctx: &ExperimentContext) -> Option<ProblemOutcome> {
    let participants = ctx.study_participants();
    let mut acc: Option<ProblemOutcome> = None;
    let mut count = 0u32;
    for p in 0..participants {
        let seed = ctx.seed ^ ((n as u64) << 24) ^ ((k as u64) << 16) ^ p as u64;
        if let Some(o) = run_problem(n, k, seed) {
            count += 1;
            match &mut acc {
                None => acc = Some(o),
                Some(a) => {
                    a.manual_i += o.manual_i;
                    a.manual_i_secs += o.manual_i_secs;
                    a.cbasnd_i += o.cbasnd_i;
                    a.cbasnd_i_secs += o.cbasnd_i_secs;
                    a.ip_i += o.ip_i;
                    a.ip_i_secs += o.ip_i_secs;
                    a.manual_ni += o.manual_ni;
                    a.manual_ni_secs += o.manual_ni_secs;
                    a.cbasnd_ni += o.cbasnd_ni;
                    a.cbasnd_ni_secs += o.cbasnd_ni_secs;
                    a.ip_ni += o.ip_ni;
                    a.ip_ni_secs += o.ip_ni_secs;
                }
            }
        }
    }
    acc.map(|mut a| {
        let c = count as f64;
        a.manual_i /= c;
        a.manual_i_secs /= c;
        a.cbasnd_i /= c;
        a.cbasnd_i_secs /= c;
        a.ip_i /= c;
        a.ip_i_secs /= c;
        a.manual_ni /= c;
        a.manual_ni_secs /= c;
        a.cbasnd_ni /= c;
        a.cbasnd_ni_secs /= c;
        a.ip_ni /= c;
        a.ip_ni_secs /= c;
        a
    })
}

const QUALITY_COLS: [&str; 7] = [
    "x",
    "Manual-i",
    "CBAS-ND-i",
    "IP-i",
    "Manual-ni",
    "CBAS-ND-ni",
    "IP-ni",
];

fn quality_row(x: usize, o: &ProblemOutcome) -> Vec<Cell> {
    vec![
        Cell::from(x),
        Cell::from(o.manual_i),
        Cell::from(o.cbasnd_i),
        Cell::from(o.ip_i),
        Cell::from(o.manual_ni),
        Cell::from(o.cbasnd_ni),
        Cell::from(o.ip_ni),
    ]
}

fn time_row(x: usize, o: &ProblemOutcome) -> Vec<Cell> {
    vec![
        Cell::from(x),
        Cell::from(o.manual_i_secs),
        Cell::from(o.cbasnd_i_secs),
        Cell::from(o.ip_i_secs),
        Cell::from(o.manual_ni_secs),
        Cell::from(o.cbasnd_ni_secs),
        Cell::from(o.ip_ni_secs),
    ]
}

/// Figure 4(a): the λ preference histogram of the participants.
pub fn lambda_histogram(ctx: &ExperimentContext) -> TableSet {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let participants = ctx.study_participants().max(50) as usize;
    let samples: Vec<f64> = (0..participants)
        .map(|_| userstudy::sample_lambda(&mut rng))
        .collect();

    let mut t = Table::new(
        "fig4a",
        "Figure 4(a): participant lambda-weight histogram",
        &["lambda bin", "percentage"],
    );
    for &(lo, hi, _) in &userstudy::LAMBDA_BINS {
        let frac =
            samples.iter().filter(|&&x| x >= lo && x < hi).count() as f64 / samples.len() as f64;
        t.push_row(vec![
            Cell::from(format!("{lo:.2}-{hi:.2}")),
            Cell::from(100.0 * frac),
        ]);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    t.push_row(vec![Cell::from("mean"), Cell::from(mean)]);

    let mut set = TableSet::new();
    set.push(t);
    set
}

/// Figures 4(b)+(c): quality and time vs network size n (k = 7).
pub fn quality_time_vs_n(ctx: &ExperimentContext) -> TableSet {
    let sizes: &[usize] = match ctx.scale {
        waso_datasets::Scale::Smoke => &[15, 20],
        _ => &[15, 20, 25, 30],
    };
    let k = 7;
    let mut quality = Table::new(
        "fig4b",
        "Figure 4(b): user-study solution quality vs n (k=7)",
        &QUALITY_COLS,
    );
    let mut time = Table::new(
        "fig4c",
        "Figure 4(c): user-study time vs n, seconds (manual = modeled)",
        &QUALITY_COLS,
    );
    for &n in sizes {
        if let Some(o) = averaged(n, k, ctx) {
            quality.push_row(quality_row(n, &o));
            time.push_row(time_row(n, &o));
        }
    }
    let mut set = TableSet::new();
    set.push(quality);
    set.push(time);
    set
}

/// Figures 4(d)+(e): quality and time vs group size k (n = 25).
pub fn quality_time_vs_k(ctx: &ExperimentContext) -> TableSet {
    let ks: &[usize] = match ctx.scale {
        waso_datasets::Scale::Smoke => &[7],
        _ => &[7, 9, 11, 13],
    };
    let n = 25;
    let mut quality = Table::new(
        "fig4d",
        "Figure 4(d): user-study solution quality vs k (n=25)",
        &QUALITY_COLS,
    );
    let mut time = Table::new(
        "fig4e",
        "Figure 4(e): user-study time vs k, seconds (manual = modeled)",
        &QUALITY_COLS,
    );
    for &k in ks {
        if let Some(o) = averaged(n, k, ctx) {
            quality.push_row(quality_row(k, &o));
            time.push_row(time_row(k, &o));
        }
    }
    let mut set = TableSet::new();
    set.push(quality);
    set.push(time);
    set
}

/// Figure 4(f): opinion percentages — how participants judge CBAS-ND's
/// group against their own.
pub fn opinions(ctx: &ExperimentContext) -> TableSet {
    let mut with_init = [0u32; 3];
    let mut without_init = [0u32; 3];
    let mut total = 0u32;

    let sizes: &[usize] = match ctx.scale {
        waso_datasets::Scale::Smoke => &[15],
        _ => &[15, 20, 25, 30],
    };
    for &n in sizes {
        for p in 0..ctx.study_participants() {
            let seed = ctx.seed ^ 0xF4 ^ ((n as u64) << 20) ^ p as u64;
            if let Some(o) = run_problem(n, 7, seed) {
                total += 1;
                let tally = |arr: &mut [u32; 3], op: Opinion| match op {
                    Opinion::Better => arr[0] += 1,
                    Opinion::Acceptable => arr[1] += 1,
                    Opinion::NotAcceptable => arr[2] += 1,
                };
                tally(&mut with_init, Opinion::judge(o.manual_i, o.cbasnd_i));
                tally(&mut without_init, Opinion::judge(o.manual_ni, o.cbasnd_ni));
            }
        }
    }

    let mut t = Table::new(
        "fig4f",
        "Figure 4(f): opinion of the recommended group vs the manual one (%)",
        &["opinion", "With Initiator", "Without Initiator"],
    );
    let pct = |x: u32| {
        if total == 0 {
            0.0
        } else {
            100.0 * x as f64 / total as f64
        }
    };
    for (i, name) in ["Better", "Acceptable", "Not Acceptable"]
        .iter()
        .enumerate()
    {
        t.push_row(vec![
            Cell::from(*name),
            Cell::from(pct(with_init[i])),
            Cell::from(pct(without_init[i])),
        ]);
    }
    let mut set = TableSet::new();
    set.push(t);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_datasets::Scale;

    fn smoke() -> ExperimentContext {
        ExperimentContext::new(Scale::Smoke)
    }

    #[test]
    fn lambda_histogram_sums_to_hundred() {
        let set = lambda_histogram(&smoke());
        let t = &set.tables[0];
        let total: f64 = t.rows[..5]
            .iter()
            .map(|r| match &r[1] {
                Cell::Num(x) => *x,
                _ => 0.0,
            })
            .sum();
        assert!((total - 100.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn study_quality_orders_sanely() {
        let set = quality_time_vs_n(&smoke());
        let q = &set.tables[0];
        assert!(!q.rows.is_empty());
        for row in &q.rows {
            let get = |i: usize| match &row[i] {
                Cell::Num(x) => *x,
                _ => panic!("expected number"),
            };
            // IP ≥ CBAS-ND (optimum dominates) in both modes.
            assert!(get(3) >= get(2) - 1e-9, "IP-i must dominate CBAS-ND-i");
            assert!(get(6) >= get(5) - 1e-9, "IP-ni must dominate CBAS-ND-ni");
            // Unrestricted optimum ≥ pinned optimum.
            assert!(get(6) >= get(3) - 1e-9);
        }
    }

    #[test]
    fn opinions_percentages_are_complete() {
        let set = opinions(&smoke());
        let t = &set.tables[0];
        for col in [1, 2] {
            let total: f64 = t
                .rows
                .iter()
                .map(|r| match &r[col] {
                    Cell::Num(x) => *x,
                    _ => 0.0,
                })
                .sum();
            assert!((total - 100.0).abs() < 1e-6, "column {col} sums to {total}");
        }
    }
}

//! Figure 7 — the DBLP evaluation (§5.3.2).
//!
//! Same sweeps as Figure 5 on the sparse co-authorship-like network (mean
//! degree ≈ 7.3 vs Facebook's 26): (a,b) quality/time vs k, (c,d) vs the
//! number of start nodes m, (e,f) vs the budget T. The paper's qualitative
//! findings to reproduce: CBAS-ND beats DGreedy by ~92% and RGreedy by
//! ~32% in quality; RGreedy is relatively faster here than on Facebook
//! because frontiers grow slowly on sparse graphs; quality saturates at a
//! larger m than on Facebook.

use waso_datasets::synthetic;

use super::fig5::{budget_sweep, m_sweep, sweep_k};
use crate::report::TableSet;
use crate::runner::ExperimentContext;

/// Figures 7(a)+(b): quality and time vs group size on DBLP-like.
pub fn quality_time_vs_k(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::dblp_like(ctx.scale, ctx.seed);
    // Paper order: 7(a) quality, 7(b) time — sweep_k returns (time, quality),
    // so name the ids accordingly.
    let mut set = sweep_k(
        &g,
        &ctx.k_sweep_sparse(),
        ctx,
        "fig7b",
        "fig7a",
        "DBLP-like",
    );
    set.tables.swap(0, 1);
    set
}

/// Figures 7(c)+(d): quality and time vs the number of start nodes m.
pub fn start_nodes_sweep(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::dblp_like(ctx.scale, ctx.seed);
    let mut set = m_sweep(&g, 10, ctx, "fig7d", "fig7c", "DBLP-like");
    set.tables.swap(0, 1);
    set
}

/// Figures 7(e)+(f): quality and time vs the budget T.
pub fn vs_budget(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::dblp_like(ctx.scale, ctx.seed);
    let mut set = budget_sweep(&g, 10, ctx, "fig7f", "fig7e", "DBLP-like");
    set.tables.swap(0, 1);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;
    use waso_datasets::Scale;

    #[test]
    fn dblp_sweep_has_quality_first() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = quality_time_vs_k(&ctx);
        assert_eq!(set.tables[0].id, "fig7a");
        assert!(set.tables[0].title.contains("quality"));
        assert_eq!(set.tables[1].id, "fig7b");
    }

    #[test]
    fn cbasnd_leads_cbas_on_sparse_graphs() {
        // Mechanism check at CI budget: neighbour differentiation clearly
        // beats uniform sampling on the sparse graph too (the §5.3.2
        // DGreedy/RGreedy orderings are a Small-scale matter, recorded in
        // EXPERIMENTS.md).
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = quality_time_vs_k(&ctx);
        let quality = &set.tables[0];
        let cb_col = quality.columns.iter().position(|c| c == "CBAS").unwrap();
        let nd_col = quality.columns.iter().position(|c| c == "CBAS-ND").unwrap();
        let (mut cb, mut nd) = (0.0, 0.0);
        for row in &quality.rows {
            if let (Cell::Num(c), Cell::Num(n)) = (&row[cb_col], &row[nd_col]) {
                cb += c;
                nd += n;
            }
        }
        // On very sparse graphs at CI budgets the CE update learns from a
        // handful of elites per stage, so allow noise here; the Small-scale
        // run shows the separation.
        assert!(nd >= cb * 0.8, "CBAS-ND {nd:.2} vs CBAS {cb:.2}");
    }
}

//! Figure 6 — the Gaussian-distribution study (§5.3.1, Appendix A).
//!
//! (a) The willingness of uniformly grown random samples on the Facebook
//! dataset is approximately Gaussian (the paper fits mean 124.71, variance
//! 13.83 at their scale); this justifies the CBAS-ND-G allocation rule.
//! (b) CBAS-ND and CBAS-ND-G reach nearly identical quality, so the paper
//! recommends the simpler uniform rule — the reproduction checks exactly
//! that.

use rand::rngs::StdRng;
use rand::SeedableRng;
use waso_algos::sampler::{select_start_nodes, Sampler};
use waso_core::WasoInstance;
use waso_datasets::synthetic;
use waso_stats::{Histogram, NormalFit};

use super::fig5::STAGES;
use crate::report::{Cell, Table, TableSet};
use crate::runner::{measure_spec_avg, roster_specs, ExperimentContext};

/// Figure 6(a): histogram of random-sample willingness + Gaussian fit.
pub fn sample_histogram(ctx: &ExperimentContext) -> TableSet {
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    let k = 10;
    let inst = WasoInstance::new(g, k).expect("k <= n");
    let num_samples = match ctx.scale {
        waso_datasets::Scale::Smoke => 400,
        _ => 2000,
    };

    let starts = select_start_nodes(inst.graph(), 50.min(inst.graph().num_nodes()), None);
    let mut sampler = Sampler::new(inst.graph().num_nodes());
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut values = Vec::with_capacity(num_samples);
    let mut i = 0usize;
    while values.len() < num_samples {
        let start = starts[i % starts.len()];
        i += 1;
        if let Some(s) = sampler.sample_uniform(&inst, start, &mut rng) {
            values.push(s.willingness);
        }
        if i > num_samples * 10 {
            break; // pathological instance guard
        }
    }

    let hist = Histogram::of(&values, 10);
    let fit = NormalFit::fit(&values).expect("enough samples");

    let mut t = Table::new(
        "fig6a",
        "Figure 6(a): willingness histogram of uniform random samples",
        &["bin midpoint", "percentage"],
    );
    for (mid, frac) in hist.fractions() {
        t.push_row(vec![Cell::from(mid), Cell::from(100.0 * frac)]);
    }

    let mut fit_table = Table::new(
        "fig6a_fit",
        "Figure 6(a): Gaussian fit of the sample distribution",
        &["statistic", "value"],
    );
    fit_table.push_row(vec![Cell::from("mean"), Cell::from(fit.mean)]);
    fit_table.push_row(vec![
        Cell::from("variance"),
        Cell::from(fit.std_dev * fit.std_dev),
    ]);
    fit_table.push_row(vec![Cell::from("samples"), Cell::from(values.len())]);

    let mut set = TableSet::new();
    set.push(t);
    set.push(fit_table);
    set
}

/// Figure 6(b): quality vs k with the Gaussian allocation variant
/// (CBAS-ND-G) alongside the Figure 5(b) roster — the roster plus the
/// `cbas-nd-g` registry entry, columns derived from their labels.
pub fn gaussian_variant(ctx: &ExperimentContext) -> TableSet {
    let registry = waso::registry();
    let g = synthetic::facebook_like(ctx.scale, ctx.seed);
    let budget = ctx.budget();
    let m = Some(ctx.harness_m(g.num_nodes()));

    let mut roster = roster_specs(&registry, budget, STAGES, m);
    let ndg = registry.get("cbas-nd-g").expect("registered");
    roster.push(crate::runner::RosterSolver {
        spec: crate::runner::harness_spec(ndg, budget, STAGES, m),
        entry: ndg,
    });

    let cols: Vec<String> = std::iter::once("k".to_string())
        .chain(roster.iter().map(|s| s.entry.label.to_string()))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut quality = Table::new(
        "fig6b",
        "Figure 6(b): solution quality vs k incl. Gaussian allocation",
        &col_refs,
    );
    for &k in &ctx.k_sweep_facebook() {
        let inst = WasoInstance::new(g.clone(), k).expect("k <= n");
        let mut row = vec![Cell::from(k)];
        for solver in &roster {
            if solver.entry.costly && k > ctx.costly_k_limit() {
                row.push(Cell::Missing);
                continue;
            }
            let meas = measure_spec_avg(
                &registry,
                &solver.spec,
                &inst,
                ctx.seed,
                solver.repeats(ctx),
            );
            row.push(meas.quality.map(Cell::from).unwrap_or(Cell::Missing));
        }
        quality.push_row(row);
    }
    let mut set = TableSet::new();
    set.push(quality);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_datasets::Scale;

    #[test]
    fn histogram_fractions_cover_all_samples() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = sample_histogram(&ctx);
        let hist = &set.tables[0];
        let total: f64 = hist
            .rows
            .iter()
            .map(|r| match &r[1] {
                Cell::Num(x) => *x,
                _ => 0.0,
            })
            .sum();
        assert!((total - 100.0).abs() < 1e-6, "total {total}");
        // Fit table carries mean/variance/samples.
        assert_eq!(set.tables[1].rows.len(), 3);
    }

    #[test]
    fn gaussian_variant_is_close_to_uniform_variant() {
        // The paper's Figure 6(b) finding: the two allocations coincide.
        let ctx = ExperimentContext::new(Scale::Smoke);
        let set = gaussian_variant(&ctx);
        let t = &set.tables[0];
        let nd_col = t.columns.iter().position(|c| c == "CBAS-ND").unwrap();
        let ndg_col = t.columns.iter().position(|c| c == "CBAS-ND-G").unwrap();
        for row in &t.rows {
            if let (Cell::Num(nd), Cell::Num(ndg)) = (&row[nd_col], &row[ndg_col]) {
                let rel = (nd - ndg).abs() / nd.abs().max(1e-9);
                assert!(rel < 0.25, "CBAS-ND {nd} vs CBAS-ND-G {ndg}");
            }
        }
    }
}

//! Per-figure experiment drivers.
//!
//! Each `figN` module regenerates the series of the corresponding figure in
//! the paper's §5 (see DESIGN.md §6 for the index). Drivers take an
//! [`crate::ExperimentContext`] and return [`crate::TableSet`]s; the
//! `waso-experiments` binary routes CLI requests here.

pub mod decomp;
pub mod engine;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use crate::report::TableSet;
use crate::runner::ExperimentContext;

/// All known experiment ids, in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "engine", "pool", "decomp", "4a", "4bc", "4de", "4f", "5ab", "5c", "5d", "5ef", "5g", "5h",
    "5ij", "6a", "6b", "7ab", "7cd", "7ef", "8ab", "9ab", "9cd",
];

/// Runs one experiment by id. Returns `None` for unknown ids.
pub fn run_figure(id: &str, ctx: &ExperimentContext) -> Option<TableSet> {
    let tables = match id {
        "engine" => engine::throughput(ctx),
        "pool" => engine::pool_comparison(ctx),
        "decomp" => decomp::ladder(ctx),
        "4a" => fig4::lambda_histogram(ctx),
        "4bc" => fig4::quality_time_vs_n(ctx),
        "4de" => fig4::quality_time_vs_k(ctx),
        "4f" => fig4::opinions(ctx),
        "5ab" => fig5::quality_time_vs_k(ctx),
        "5c" => fig5::time_vs_n(ctx),
        "5d" => fig5::parallel_speedup(ctx),
        "5ef" => fig5::vs_budget(ctx),
        "5g" => fig5::smoothing_sweep(ctx),
        "5h" => fig5::rho_sweep(ctx),
        "5ij" => fig5::start_nodes_sweep(ctx),
        "6a" => fig6::sample_histogram(ctx),
        "6b" => fig6::gaussian_variant(ctx),
        "7ab" => fig7::quality_time_vs_k(ctx),
        "7cd" => fig7::start_nodes_sweep(ctx),
        "7ef" => fig7::vs_budget(ctx),
        "8ab" => fig8::quality_time_vs_k(ctx),
        "9ab" => fig9::ip_comparison(ctx),
        "9cd" => fig9::waso_dis(ctx),
        _ => return None,
    };
    Some(tables)
}

/// Runs every experiment.
pub fn run_all(ctx: &ExperimentContext) -> TableSet {
    let mut out = TableSet::new();
    for id in ALL_FIGURES {
        let set = run_figure(id, ctx).expect("ALL_FIGURES ids are routed");
        out.extend(set);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_datasets::Scale;

    #[test]
    fn unknown_figure_is_none() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        assert!(run_figure("fig42", &ctx).is_none());
    }

    #[test]
    fn all_ids_route() {
        // Routing only — execution is covered by the per-figure tests.
        for id in ALL_FIGURES {
            assert!(
                *id == "engine"
                    || *id == "pool"
                    || *id == "decomp"
                    || matches!(id.chars().next(), Some('4'..='9')),
                "odd id {id}"
            );
        }
    }
}

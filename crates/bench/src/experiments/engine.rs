//! Engine throughput — the perf trajectory (`BENCH_engine.json`).
//!
//! Sweeps the staged engine's execution backend (serial, pooled with
//! 1/2/4/8 workers) over two workloads:
//!
//! * the Figure 5(d) thread-sweep workload (Facebook-like, k = 10) — the
//!   paper's own parallel benchmark;
//! * the planted-partition workload
//!   ([`waso_datasets::synthetic::planted_partition_like`]) — near-uniform
//!   community degrees, where OCBA pruning behaves differently from the
//!   heavy-tailed BA-style graphs.
//!
//! Results are returned both as a markdown/CSV [`TableSet`] (like every
//! figure driver) and as machine-readable [`BenchRecord`]s; the
//! `waso-experiments` binary writes the latter to `BENCH_engine.json`.
//! The committed copy of that file is the yardstick future perf PRs diff
//! against — regenerate it with
//! `waso-experiments --figure engine --scale smoke`.

use waso_core::WasoInstance;
use waso_datasets::synthetic;

use crate::report::{BenchRecord, Cell, Table, TableSet};
use crate::runner::{measure_spec_avg, ExperimentContext};

use super::fig5::cbasnd_spec;

/// Thread counts of the pooled sweep (the paper's Figure 5(d) axis).
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Measures both workloads across the backend sweep.
pub fn throughput_records(ctx: &ExperimentContext) -> Vec<BenchRecord> {
    let registry = waso::registry();
    let k = 10;
    let workloads = [
        (
            "facebook-like",
            synthetic::facebook_like(ctx.scale, ctx.seed),
        ),
        (
            "planted-partition",
            synthetic::planted_partition_like(ctx.scale, ctx.seed),
        ),
    ];
    // The Figure 5(d) settings: a heavier budget so sampling dominates.
    let budget = ctx.budget() * 4;

    let mut records = Vec::new();
    for (name, graph) in workloads {
        let n = graph.num_nodes();
        let inst = WasoInstance::new(graph, k).expect("workloads have n >= k");
        let m = Some(ctx.harness_m(n));
        let workload = format!("{name}/n={n}/k={k}");

        // The serial solver, then the pooled backend at each thread count.
        let serial_spec = cbasnd_spec(budget, m);
        let mut specs = vec![(0usize, serial_spec.clone())];
        specs.extend(
            THREAD_SWEEP
                .iter()
                .map(|&t| (t, serial_spec.clone().threads(t))),
        );
        for (threads, spec) in specs {
            let meas = measure_spec_avg(&registry, &spec, &inst, ctx.seed, ctx.repeats);
            records.push(BenchRecord {
                workload: workload.clone(),
                solver: spec.to_string(),
                threads,
                mean_quality: meas.quality,
                wall_seconds: meas.seconds,
                samples_per_sec: meas.samples_per_sec,
            });
        }
    }
    records
}

/// Renders the records as one table per workload (markdown/CSV surface).
pub fn records_table(records: &[BenchRecord]) -> TableSet {
    let mut set = TableSet::new();
    let mut workloads: Vec<&str> = records.iter().map(|r| r.workload.as_str()).collect();
    workloads.dedup();
    for (idx, w) in workloads.iter().enumerate() {
        let mut t = Table::new(
            format!("engine{}", (b'a' + idx as u8) as char),
            format!("staged-engine throughput ({w})"),
            &["threads", "wall s", "samples/s", "mean quality"],
        );
        for r in records.iter().filter(|r| r.workload == *w) {
            t.push_row(vec![
                if r.threads == 0 {
                    Cell::from("serial")
                } else {
                    Cell::from(r.threads)
                },
                Cell::from(r.wall_seconds),
                Cell::from(r.samples_per_sec),
                r.mean_quality.map(Cell::from).unwrap_or(Cell::Missing),
            ]);
        }
        set.push(t);
    }
    set
}

/// Tables-only entry point (the [`super::run_figure`] route). The JSON
/// side effect needs an output directory, which only the CLI has — use
/// [`throughput_to`] to get both from one measurement pass.
pub fn throughput(ctx: &ExperimentContext) -> TableSet {
    records_table(&throughput_records(ctx))
}

/// Measures once, writes `<out_dir>/BENCH_engine.json`, and returns the
/// tables — the `waso-experiments --figure engine` path.
pub fn throughput_to(
    ctx: &ExperimentContext,
    out_dir: &std::path::Path,
) -> std::io::Result<TableSet> {
    let records = throughput_records(ctx);
    crate::report::write_records_json(&records, &out_dir.join("BENCH_engine.json"))?;
    Ok(records_table(&records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_datasets::Scale;

    #[test]
    fn records_cover_both_workloads_and_all_backends() {
        let mut ctx = ExperimentContext::new(Scale::Smoke);
        // Keep the CI cost tiny; the committed yardstick uses the real
        // smoke budget.
        ctx.repeats = 1;
        let records = throughput_records(&ctx);
        // 2 workloads × (serial + 4 thread counts).
        assert_eq!(records.len(), 2 * (1 + THREAD_SWEEP.len()));
        assert!(records.iter().any(|r| r.workload.starts_with("facebook")));
        assert!(records
            .iter()
            .any(|r| r.workload.starts_with("planted-partition")));
        for r in &records {
            assert!(r.samples_per_sec > 0.0, "{}: no throughput", r.solver);
            assert!(r.mean_quality.is_some(), "{}: infeasible", r.solver);
        }
        let tables = records_table(&records);
        assert_eq!(tables.tables.len(), 2);
        assert_eq!(tables.tables[0].rows.len(), 1 + THREAD_SWEEP.len());
    }
}

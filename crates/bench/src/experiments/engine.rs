//! Engine throughput — the perf trajectory (`BENCH_engine.json`).
//!
//! Sweeps the staged engine's execution backend (serial, pooled with
//! 1/2/4/8 workers) over two workloads:
//!
//! * the Figure 5(d) thread-sweep workload (Facebook-like, k = 10) — the
//!   paper's own parallel benchmark;
//! * the planted-partition workload
//!   ([`waso_datasets::synthetic::planted_partition_like`]) — near-uniform
//!   community degrees, where OCBA pruning behaves differently from the
//!   heavy-tailed BA-style graphs.
//!
//! A third measurement targets the **serving regime**: a batch of
//! identical 20-stage pooled solves run (a) the per-solve-spawn way —
//! build the solver, clone the instance, spawn a fresh worker pool for
//! every job — and (b) through one `WasoSession::solve_batch`, where the
//! instance is validated once and every job borrows the session-held
//! [`waso_algos::SolverPool`]. The samples/sec gap between the two rows
//! is the amortization the session pool buys.
//!
//! Results are returned both as a markdown/CSV [`TableSet`] (like every
//! figure driver) and as machine-readable [`BenchRecord`]s; the
//! `waso-experiments` binary writes the latter to `BENCH_engine.json`.
//! The committed copy of that file is the yardstick future perf PRs diff
//! against (measured on a **1-core** box — it captures pool overhead,
//! not scaling) — regenerate it with
//! `waso-experiments --figure engine --scale smoke`.

use waso::algos::{PoolMode, PoolStats, SharedPool};
use waso::{SolverSpec, WasoSession};
use waso_core::WasoInstance;
use waso_datasets::synthetic;

use crate::report::{BenchRecord, Cell, Table, TableSet};
use crate::runner::{
    measure_session_batch, measure_session_each, measure_session_submit_wait, measure_spec_avg,
    measure_spec_batch_baseline, ExperimentContext,
};

use super::fig5::cbasnd_spec;

/// Thread counts of the pooled sweep (the paper's Figure 5(d) axis).
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Stage count of the batch workload — the deep-stage setting of the
/// PR-2 pool benchmark, where per-stage dispatch costs dominate.
pub const BATCH_STAGES: u32 = 20;

/// Jobs per measured batch.
pub const BATCH_SOLVES: usize = 16;

/// Worker count of the batch workload's pooled solver.
pub const BATCH_THREADS: usize = 4;

/// Measures both workloads across the backend sweep.
pub fn throughput_records(ctx: &ExperimentContext) -> Vec<BenchRecord> {
    let registry = waso::registry();
    let k = 10;
    let workloads = [
        (
            "facebook-like",
            synthetic::facebook_like(ctx.scale, ctx.seed),
        ),
        (
            "planted-partition",
            synthetic::planted_partition_like(ctx.scale, ctx.seed),
        ),
    ];
    // The Figure 5(d) settings: a heavier budget so sampling dominates.
    let budget = ctx.budget() * 4;

    let mut records = Vec::new();
    for (name, graph) in workloads {
        let n = graph.num_nodes();
        let inst = WasoInstance::new(graph, k).expect("workloads have n >= k");
        let m = Some(ctx.harness_m(n));
        let workload = format!("{name}/n={n}/k={k}");

        // The serial solver, then the pooled backend at each thread count.
        let serial_spec = cbasnd_spec(budget, m);
        let mut specs = vec![(0usize, serial_spec.clone())];
        specs.extend(
            THREAD_SWEEP
                .iter()
                .map(|&t| (t, serial_spec.clone().threads(t))),
        );
        for (threads, spec) in specs {
            let meas = measure_spec_avg(&registry, &spec, &inst, ctx.seed, ctx.repeats);
            records.push(BenchRecord {
                workload: workload.clone(),
                solver: spec.to_string(),
                threads,
                mean_quality: meas.quality,
                wall_seconds: meas.seconds,
                samples_per_sec: meas.samples_per_sec,
            });
        }
    }

    // One serial large-n planted-partition record: a whole-graph anchor
    // in the regime the `decomp` ladder targets, so the committed JSON
    // tracks baseline per-sample cost at scale, not just the small sweeps.
    let n = large_n(ctx.scale);
    let graph = synthetic::planted_partition_like_n(n, ctx.seed);
    let inst = WasoInstance::new(graph, k).expect("large-n workload has n >= k");
    let spec = cbasnd_spec(budget, Some(ctx.harness_m(n)));
    let meas = measure_spec_avg(&registry, &spec, &inst, ctx.seed, ctx.repeats);
    records.push(BenchRecord {
        workload: format!("planted-partition/n={n}/k={k}/large"),
        solver: spec.to_string(),
        threads: 0,
        mean_quality: meas.quality,
        wall_seconds: meas.seconds,
        samples_per_sec: meas.samples_per_sec,
    });
    records
}

/// Size of the serial large-n anchor record per scale.
pub fn large_n(scale: waso_datasets::Scale) -> usize {
    match scale {
        waso_datasets::Scale::Smoke => 20_000,
        waso_datasets::Scale::Small => 50_000,
        waso_datasets::Scale::Paper => 200_000,
    }
}

/// Measures the batch workload: `BATCH_SOLVES` identical 20-stage pooled
/// solves, per-solve-spawn vs. one session-held pool. Two records whose
/// `samples_per_sec` difference is the spawn/clone amortization.
pub fn batch_records(ctx: &ExperimentContext) -> Vec<BenchRecord> {
    let registry = waso::registry();
    let k = 10;
    let graph = synthetic::facebook_like(ctx.scale, ctx.seed);
    let n = graph.num_nodes();
    let inst = WasoInstance::new(graph.clone(), k).expect("workload has n >= k");
    let spec = SolverSpec::cbas_nd()
        .budget(ctx.budget())
        .stages(BATCH_STAGES)
        .start_nodes(ctx.harness_m(n))
        .threads(BATCH_THREADS);
    let workload = format!("facebook-like/n={n}/k={k}/batch={BATCH_SOLVES}x{BATCH_STAGES}-stage");

    let baseline = measure_spec_batch_baseline(&registry, &spec, &inst, ctx.seed, BATCH_SOLVES);
    let session = WasoSession::new(graph).k(k).seed(ctx.seed);
    let batched = measure_session_batch(&session, &vec![spec.clone(); BATCH_SOLVES]);

    [("per-solve spawn", baseline), ("session pool", batched)]
        .into_iter()
        .map(|(mode, meas)| BenchRecord {
            workload: workload.clone(),
            solver: format!("{spec} ({mode})"),
            threads: BATCH_THREADS,
            mean_quality: meas.quality,
            wall_seconds: meas.seconds,
            samples_per_sec: meas.samples_per_sec,
        })
        .collect()
}

/// The `--figure engine` handle-overhead comparison: the same
/// `BATCH_SOLVES` sequential solves run (a) through the blocking
/// `WasoSession::solve` and (b) through explicit `submit` + `wait`
/// handles. Since PR 5 the blocking call *is* submit+wait, so the two
/// rows should coincide up to noise — the committed records pin that the
/// handle plumbing (job thread, channels, control publishing) stays
/// free, and would expose any future divergence between the paths.
pub fn handle_records(ctx: &ExperimentContext) -> Vec<BenchRecord> {
    let k = 10;
    let graph = synthetic::facebook_like(ctx.scale, ctx.seed);
    let n = graph.num_nodes();
    // A serial spec isolates the per-job wrapper cost: no worker pool in
    // either row, so the whole gap is the handle machinery.
    let spec = SolverSpec::cbas_nd()
        .budget(ctx.budget())
        .stages(BATCH_STAGES)
        .start_nodes(ctx.harness_m(n));
    let specs = vec![spec.clone(); BATCH_SOLVES];
    let workload = format!("facebook-like/n={n}/k={k}/batch={BATCH_SOLVES}x{BATCH_STAGES}-stage");

    let rows = [
        (
            "blocking solve",
            measure_session_each(&WasoSession::new(graph.clone()).k(k).seed(ctx.seed), &specs),
        ),
        (
            "submit+wait",
            measure_session_submit_wait(&WasoSession::new(graph).k(k).seed(ctx.seed), &specs),
        ),
    ];
    rows.into_iter()
        .map(|(mode, meas)| BenchRecord {
            workload: workload.clone(),
            solver: format!("{spec} ({mode})"),
            threads: 0,
            mean_quality: meas.quality,
            wall_seconds: meas.seconds,
            samples_per_sec: meas.samples_per_sec,
        })
        .collect()
}

/// Renders the handle-overhead records as a mode-keyed table.
pub fn handle_table(records: &[BenchRecord]) -> Table {
    let title = records
        .first()
        .map(|r| format!("blocking vs submit+wait overhead ({})", r.workload))
        .unwrap_or_else(|| "blocking vs submit+wait overhead".to_string());
    let mut t = Table::new(
        "engine-handles",
        title,
        &["mode", "wall s/solve", "samples/s", "mean quality"],
    );
    for r in records {
        let mode = ["blocking solve", "submit+wait"]
            .into_iter()
            .find(|m| r.solver.ends_with(&format!("({m})")))
            .unwrap_or("?");
        t.push_row(vec![
            Cell::from(mode),
            Cell::from(r.wall_seconds),
            Cell::from(r.samples_per_sec),
            r.mean_quality.map(Cell::from).unwrap_or(Cell::Missing),
        ]);
    }
    t
}

/// The `--figure engine` warm-vs-cold comparison: solve once, apply a
/// [`waso::graph::GraphDelta`] that touches the winning group (so the
/// memo entry is invalidated and its group stashed as an incumbent),
/// then time three re-solve paths on the identical delta'd instance:
///
/// * **cold start** — a fresh session, no memo, no incumbent (the
///   pre-delta-layer behaviour: every replan pays full price);
/// * **warm start** — the session's next solve, seeded with the
///   invalidated entry's group as the incumbent to beat;
/// * **memo hit** — the solve after that, answered from the memo in
///   O(1) without running a solver.
///
/// Warm-start quality is ≥ cold by construction (the incumbent only
/// tightens the best-so-far); the rows pin both that and the wall-clock
/// ladder in the committed `BENCH_engine.json`.
pub fn memo_records(ctx: &ExperimentContext) -> Vec<BenchRecord> {
    use std::time::Instant;
    use waso::graph::GraphDelta;

    let k = 10;
    let graph = synthetic::facebook_like(ctx.scale, ctx.seed);
    let n = graph.num_nodes();
    let spec = SolverSpec::cbas_nd()
        .budget(ctx.budget())
        .stages(BATCH_STAGES)
        .start_nodes(ctx.harness_m(n));
    let workload = format!("facebook-like/n={n}/k={k}/delta-resolve");

    let mut session = WasoSession::new(graph.clone()).k(k).seed(ctx.seed);
    let first = session.solve(&spec).expect("harness workload is feasible");
    let delta = GraphDelta::SetInterest {
        v: first.group.nodes()[0],
        interest: 0.0,
    };
    session
        .apply(&delta)
        .expect("delta endpoint is a solved node");

    let t0 = Instant::now();
    let warm = session.solve(&spec).expect("delta'd workload is feasible");
    let warm_s = t0.elapsed().as_secs_f64();

    let cold_session = WasoSession::new(delta.apply(&graph).expect("same delta, same graph"))
        .k(k)
        .seed(ctx.seed);
    let t0 = Instant::now();
    let cold = cold_session
        .solve(&spec)
        .expect("delta'd workload is feasible");
    let cold_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let hit = session.solve(&spec).expect("memo hit replays the result");
    let hit_s = t0.elapsed().as_secs_f64();

    [
        ("cold start", cold, cold_s),
        ("warm start", warm, warm_s),
        ("memo hit", hit, hit_s),
    ]
    .into_iter()
    .map(|(mode, result, seconds)| BenchRecord {
        workload: workload.clone(),
        solver: format!("{spec} ({mode})"),
        threads: 0,
        mean_quality: Some(result.group.willingness()),
        wall_seconds: seconds,
        samples_per_sec: if seconds > 0.0 && result.stats.samples_drawn > 0 {
            result.stats.samples_drawn as f64 / seconds
        } else {
            0.0
        },
    })
    .collect()
}

/// Renders the warm-vs-cold records as a mode-keyed table.
pub fn memo_table(records: &[BenchRecord]) -> Table {
    let title = records
        .first()
        .map(|r| {
            format!(
                "post-delta re-solve: cold vs warm vs memo hit ({})",
                r.workload
            )
        })
        .unwrap_or_else(|| "post-delta re-solve: cold vs warm vs memo hit".to_string());
    let mut t = Table::new(
        "engine-memo",
        title,
        &["mode", "wall s", "samples/s", "mean quality"],
    );
    for r in records {
        let mode = ["cold start", "warm start", "memo hit"]
            .into_iter()
            .find(|m| r.solver.ends_with(&format!("({m})")))
            .unwrap_or("?");
        t.push_row(vec![
            Cell::from(mode),
            Cell::from(r.wall_seconds),
            Cell::from(r.samples_per_sec),
            r.mean_quality.map(Cell::from).unwrap_or(Cell::Missing),
        ]);
    }
    t
}

/// The `--figure pool` comparison: the same `BATCH_SOLVES`-job workload
/// run (a) with `pool=private` — every job spawns and tears down its own
/// worker pool, the pre-SharedPool behaviour; (b) sequentially over one
/// shared pool — amortized spawns, one job at a time; (c) as one
/// concurrent `solve_batch` over the shared pool — the job-level
/// scheduler keeping every worker busy across jobs. Three records whose
/// `samples_per_sec` column is the private → shared → concurrent ladder;
/// quality is identical across all three by the determinism contract.
pub fn pool_records(ctx: &ExperimentContext) -> Vec<BenchRecord> {
    let k = 10;
    let graph = synthetic::facebook_like(ctx.scale, ctx.seed);
    let n = graph.num_nodes();
    let spec = SolverSpec::cbas_nd()
        .budget(ctx.budget())
        .stages(BATCH_STAGES)
        .start_nodes(ctx.harness_m(n))
        .threads(BATCH_THREADS);
    let workload = format!("facebook-like/n={n}/k={k}/batch={BATCH_SOLVES}x{BATCH_STAGES}-stage");

    let private_specs = vec![spec.clone().pool(PoolMode::Private); BATCH_SOLVES];
    let shared_specs = vec![spec.clone(); BATCH_SOLVES];
    // A fresh session per mode: no warm pool or cached instance leaks
    // from one row into the next.
    let rows = [
        (
            "private pool",
            measure_session_each(
                &WasoSession::new(graph.clone()).k(k).seed(ctx.seed),
                &private_specs,
            ),
        ),
        (
            "shared pool",
            measure_session_each(
                &WasoSession::new(graph.clone()).k(k).seed(ctx.seed),
                &shared_specs,
            ),
        ),
        (
            "concurrent batch",
            measure_session_batch(&WasoSession::new(graph).k(k).seed(ctx.seed), &shared_specs),
        ),
    ];
    rows.into_iter()
        .map(|(mode, meas)| BenchRecord {
            workload: workload.clone(),
            solver: format!("{spec} ({mode})"),
            threads: BATCH_THREADS,
            mean_quality: meas.quality,
            wall_seconds: meas.seconds,
            samples_per_sec: meas.samples_per_sec,
        })
        .collect()
}

/// Renders the pool-mode records as a mode-keyed table.
pub fn pool_table(records: &[BenchRecord]) -> Table {
    let title = records
        .first()
        .map(|r| {
            format!(
                "private vs shared vs concurrent-batch pool ({})",
                r.workload
            )
        })
        .unwrap_or_else(|| "private vs shared vs concurrent-batch pool".to_string());
    let mut t = Table::new(
        "engine-pool",
        title,
        &["mode", "wall s/solve", "samples/s", "mean quality"],
    );
    for r in records {
        let mode = ["private pool", "shared pool", "concurrent batch"]
            .into_iter()
            .find(|m| r.solver.ends_with(&format!("({m})")))
            .unwrap_or("?");
        t.push_row(vec![
            Cell::from(mode),
            Cell::from(r.wall_seconds),
            Cell::from(r.samples_per_sec),
            r.mean_quality.map(Cell::from).unwrap_or(Cell::Missing),
        ]);
    }
    t
}

/// Runs one concurrent batch over an explicitly attached [`SharedPool`]
/// and snapshots its health gauges — the [`PoolStats`] surface a serving
/// deployment scrapes (per-job queue depths, per-worker busy/idle and
/// lifetime chunk counters, respawns). Returns the post-batch snapshot;
/// the batch itself is a warm-up, not a measurement.
pub fn pool_health_snapshot(ctx: &ExperimentContext) -> PoolStats {
    let k = 10;
    let graph = synthetic::facebook_like(ctx.scale, ctx.seed);
    let n = graph.num_nodes();
    let pool = std::sync::Arc::new(SharedPool::new(BATCH_THREADS));
    let spec = SolverSpec::cbas_nd()
        .budget(ctx.budget())
        .stages(BATCH_STAGES)
        .start_nodes(ctx.harness_m(n))
        .threads(BATCH_THREADS);
    let session = WasoSession::new(graph)
        .k(k)
        .seed(ctx.seed)
        .attach_pool(std::sync::Arc::clone(&pool));
    session
        .solve_batch(&vec![spec; 4])
        .expect("harness built an unusable pool-health batch");
    pool.stats()
}

/// Renders a [`PoolStats`] snapshot as a gauge/value table.
pub fn pool_health_table(stats: &PoolStats) -> Table {
    let mut t = Table::new(
        "pool-health",
        format!("SharedPool health snapshot ({stats})"),
        &["gauge", "value"],
    );
    t.push_row(vec![Cell::from("workers"), Cell::from(stats.threads)]);
    t.push_row(vec![
        Cell::from("busy workers"),
        Cell::from(stats.busy_workers()),
    ]);
    t.push_row(vec![
        Cell::from("active jobs"),
        Cell::from(stats.active_jobs),
    ]);
    t.push_row(vec![
        Cell::from("queued chunks"),
        Cell::from(stats.total_queued()),
    ]);
    t.push_row(vec![
        Cell::from("respawned workers"),
        Cell::from(stats.respawned_workers),
    ]);
    for (slot, w) in stats.workers.iter().enumerate() {
        t.push_row(vec![
            Cell::from(format!("worker {slot} chunks processed")),
            Cell::from(w.chunks_processed),
        ]);
    }
    t
}

/// Tables-only entry point for the `pool` figure id: the
/// private/shared/concurrent throughput ladder plus the pool health
/// snapshot.
pub fn pool_comparison(ctx: &ExperimentContext) -> TableSet {
    let mut set = TableSet::new();
    set.push(pool_table(&pool_records(ctx)));
    set.push(pool_health_table(&pool_health_snapshot(ctx)));
    set
}

/// Renders the batch records as a mode-keyed table.
pub fn batch_table(records: &[BenchRecord]) -> Table {
    let title = records
        .first()
        .map(|r| format!("batched solves over a session-held pool ({})", r.workload))
        .unwrap_or_else(|| "batched solves over a session-held pool".to_string());
    let mut t = Table::new(
        "engine-batch",
        title,
        &["mode", "wall s/solve", "samples/s", "mean quality"],
    );
    for r in records {
        let mode = if r.solver.ends_with("(session pool)") {
            "session pool"
        } else {
            "per-solve spawn"
        };
        t.push_row(vec![
            Cell::from(mode),
            Cell::from(r.wall_seconds),
            Cell::from(r.samples_per_sec),
            r.mean_quality.map(Cell::from).unwrap_or(Cell::Missing),
        ]);
    }
    t
}

/// Renders the records as one table per workload (markdown/CSV surface).
pub fn records_table(records: &[BenchRecord]) -> TableSet {
    let mut set = TableSet::new();
    let mut workloads: Vec<&str> = records.iter().map(|r| r.workload.as_str()).collect();
    workloads.dedup();
    for (idx, w) in workloads.iter().enumerate() {
        let mut t = Table::new(
            format!("engine{}", (b'a' + idx as u8) as char),
            format!("staged-engine throughput ({w})"),
            &["threads", "wall s", "samples/s", "mean quality"],
        );
        for r in records.iter().filter(|r| r.workload == *w) {
            t.push_row(vec![
                if r.threads == 0 {
                    Cell::from("serial")
                } else {
                    Cell::from(r.threads)
                },
                Cell::from(r.wall_seconds),
                Cell::from(r.samples_per_sec),
                r.mean_quality.map(Cell::from).unwrap_or(Cell::Missing),
            ]);
        }
        set.push(t);
    }
    set
}

/// Tables-only entry point (the [`super::run_figure`] route). The JSON
/// side effect needs an output directory, which only the CLI has — use
/// [`throughput_to`] to get both from one measurement pass.
pub fn throughput(ctx: &ExperimentContext) -> TableSet {
    let mut tables = records_table(&throughput_records(ctx));
    tables.push(batch_table(&batch_records(ctx)));
    tables.push(handle_table(&handle_records(ctx)));
    tables.push(memo_table(&memo_records(ctx)));
    tables
}

/// Measures once, returning the tables and the machine-readable records
/// (backend sweep + batch + pool-mode + handle + warm-vs-cold rows) — the
/// `waso-experiments --figure engine` / `--figure pool` path. The binary
/// folds these records, together with any other record-emitting figures
/// run in the same invocation (`--figure decomp`), into one
/// `BENCH_engine.json`.
pub fn throughput_collect(ctx: &ExperimentContext) -> (TableSet, Vec<BenchRecord>) {
    let sweep = throughput_records(ctx);
    let batch = batch_records(ctx);
    let pool = pool_records(ctx);
    let handles = handle_records(ctx);
    let memo = memo_records(ctx);
    let mut records = sweep.clone();
    records.extend(batch.clone());
    records.extend(pool.clone());
    records.extend(handles.clone());
    records.extend(memo.clone());
    let mut tables = records_table(&sweep);
    tables.push(batch_table(&batch));
    tables.push(pool_table(&pool));
    tables.push(handle_table(&handles));
    tables.push(memo_table(&memo));
    tables.push(pool_health_table(&pool_health_snapshot(ctx)));
    (tables, records)
}

/// Measures once, writes `<out_dir>/BENCH_engine.json`, and returns the
/// tables — [`throughput_collect`] plus the JSON side effect, for callers
/// that regenerate the engine artifact alone.
pub fn throughput_to(
    ctx: &ExperimentContext,
    out_dir: &std::path::Path,
) -> std::io::Result<TableSet> {
    let (tables, records) = throughput_collect(ctx);
    crate::report::write_records_json(&records, &out_dir.join("BENCH_engine.json"))?;
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_datasets::Scale;

    #[test]
    fn records_cover_both_workloads_and_all_backends() {
        let mut ctx = ExperimentContext::new(Scale::Smoke);
        // Keep the CI cost tiny; the committed yardstick uses the real
        // smoke budget.
        ctx.repeats = 1;
        let records = throughput_records(&ctx);
        // 2 workloads × (serial + 4 thread counts) + the large-n anchor.
        assert_eq!(records.len(), 2 * (1 + THREAD_SWEEP.len()) + 1);
        assert!(records.iter().any(|r| r.workload.starts_with("facebook")));
        assert!(records
            .iter()
            .any(|r| r.workload.starts_with("planted-partition")));
        assert!(
            records.last().unwrap().workload.ends_with("/large"),
            "large-n anchor record missing"
        );
        for r in &records {
            assert!(r.samples_per_sec > 0.0, "{}: no throughput", r.solver);
            assert!(r.mean_quality.is_some(), "{}: infeasible", r.solver);
        }
        let tables = records_table(&records);
        assert_eq!(tables.tables.len(), 3, "two sweeps + the large-n anchor");
        assert_eq!(tables.tables[0].rows.len(), 1 + THREAD_SWEEP.len());
    }

    #[test]
    fn pool_records_cover_all_three_modes_with_identical_quality() {
        let mut ctx = ExperimentContext::new(Scale::Smoke);
        ctx.repeats = 1;
        let records = pool_records(&ctx);
        assert_eq!(records.len(), 3);
        for (r, mode) in
            records
                .iter()
                .zip(["(private pool)", "(shared pool)", "(concurrent batch)"])
        {
            assert!(r.solver.ends_with(mode), "{}", r.solver);
            assert!(r.samples_per_sec > 0.0, "{}: no throughput", r.solver);
            assert!(r.workload.contains("batch="));
        }
        // The determinism contract at bench level: every mode solves the
        // identical workload, so mean quality matches exactly.
        assert_eq!(records[0].mean_quality, records[1].mean_quality);
        assert_eq!(records[1].mean_quality, records[2].mean_quality);
        let table = pool_table(&records);
        assert_eq!(table.rows.len(), 3);
    }

    #[test]
    fn handle_records_cover_both_modes_with_identical_quality() {
        let mut ctx = ExperimentContext::new(Scale::Smoke);
        ctx.repeats = 1;
        let records = handle_records(&ctx);
        assert_eq!(records.len(), 2);
        assert!(records[0].solver.ends_with("(blocking solve)"));
        assert!(records[1].solver.ends_with("(submit+wait)"));
        for r in &records {
            assert!(r.samples_per_sec > 0.0, "{}: no throughput", r.solver);
        }
        // `solve` IS submit+wait: the two rows run the identical path,
        // so quality matches exactly.
        assert_eq!(records[0].mean_quality, records[1].mean_quality);
        let table = handle_table(&records);
        assert_eq!(table.rows.len(), 2);
    }

    #[test]
    fn memo_records_cover_the_resolve_ladder() {
        let mut ctx = ExperimentContext::new(Scale::Smoke);
        ctx.repeats = 1;
        let records = memo_records(&ctx);
        assert_eq!(records.len(), 3);
        assert!(records[0].solver.ends_with("(cold start)"));
        assert!(records[1].solver.ends_with("(warm start)"));
        assert!(records[2].solver.ends_with("(memo hit)"));
        for r in &records {
            assert!(r.samples_per_sec > 0.0, "{}: no throughput", r.solver);
            assert!(r.mean_quality.is_some(), "{}: infeasible", r.solver);
            assert!(r.workload.contains("delta-resolve"));
        }
        // Warm-starting only tightens the incumbent: quality on the
        // identical delta'd instance is >= the cold solve's.
        assert!(records[1].mean_quality >= records[0].mean_quality);
        // The memo hit replays the warm solve bit-identically.
        assert_eq!(records[2].mean_quality, records[1].mean_quality);
        let table = memo_table(&records);
        assert_eq!(table.rows.len(), 3);
    }

    #[test]
    fn pool_health_snapshot_reports_a_drained_pool() {
        let mut ctx = ExperimentContext::new(Scale::Smoke);
        ctx.repeats = 1;
        let stats = pool_health_snapshot(&ctx);
        assert_eq!(stats.threads, BATCH_THREADS);
        assert_eq!(stats.active_jobs, 0, "batch finished: no jobs attached");
        assert_eq!(stats.total_queued(), 0);
        assert_eq!(stats.respawned_workers, 0);
        let worked: u64 = stats.workers.iter().map(|w| w.chunks_processed).sum();
        assert!(worked > 0, "the warm-up batch ran over the pool");
        let table = pool_health_table(&stats);
        assert!(table.rows.len() >= 5 + BATCH_THREADS);
    }

    #[test]
    fn batch_records_cover_both_modes() {
        let mut ctx = ExperimentContext::new(Scale::Smoke);
        ctx.repeats = 1;
        let records = batch_records(&ctx);
        assert_eq!(records.len(), 2);
        assert!(records[0].solver.ends_with("(per-solve spawn)"));
        assert!(records[1].solver.ends_with("(session pool)"));
        for r in &records {
            assert!(r.samples_per_sec > 0.0, "{}: no throughput", r.solver);
            assert!(r.mean_quality.is_some(), "{}: infeasible", r.solver);
            assert!(r.workload.contains("batch="));
        }
        // Determinism contract: both modes solve the identical workload,
        // so mean quality matches exactly.
        assert_eq!(records[0].mean_quality, records[1].mean_quality);
        let table = batch_table(&records);
        assert_eq!(table.rows.len(), 2);
    }
}

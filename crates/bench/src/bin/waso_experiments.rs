//! `waso-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! waso-experiments [--figure <id>|all] [--scale smoke|small|paper]
//!                  [--seed N] [--repeats N] [--out DIR] [--list]
//! ```
//!
//! Prints each experiment's tables as markdown and writes one CSV per
//! table under `--out` (default `results/`).

use std::path::PathBuf;
use std::process::ExitCode;

use waso_bench::experiments::{run_figure, ALL_FIGURES};
use waso_bench::runner::{parse_scale, ExperimentContext};
use waso_bench::Scale;

struct Args {
    figures: Vec<String>,
    scale: Scale,
    seed: Option<u64>,
    repeats: Option<u32>,
    out: PathBuf,
    list: bool,
}

fn usage() -> String {
    format!(
        "usage: waso-experiments [--figure <id>|all] [--scale smoke|small|paper]\n\
         \x20                       [--seed N] [--repeats N] [--out DIR] [--list]\n\
         figure ids: {}",
        ALL_FIGURES.join(", ")
    )
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        figures: vec![],
        scale: Scale::Small,
        seed: None,
        repeats: None,
        out: PathBuf::from("results"),
        list: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].clone();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--figure" | "-f" => {
                let v = value("--figure")?;
                args.figures.push(v);
            }
            "--scale" | "-s" => {
                let v = value("--scale")?;
                args.scale =
                    parse_scale(&v).ok_or_else(|| format!("unknown scale '{v}'\n{}", usage()))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed '{v}'"))?);
            }
            "--repeats" => {
                let v = value("--repeats")?;
                args.repeats = Some(v.parse().map_err(|_| format!("bad repeats '{v}'"))?);
            }
            "--out" | "-o" => {
                args.out = PathBuf::from(value("--out")?);
            }
            "--list" => args.list = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
        i += 1;
    }
    if args.figures.is_empty() {
        args.figures.push("all".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for id in ALL_FIGURES {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let mut ctx = ExperimentContext::new(args.scale);
    if let Some(seed) = args.seed {
        ctx.seed = seed;
    }
    if let Some(repeats) = args.repeats {
        ctx.repeats = repeats.max(1);
    }

    let ids: Vec<&str> = if args.figures.iter().any(|f| f == "all") {
        ALL_FIGURES.to_vec()
    } else {
        args.figures.iter().map(String::as_str).collect()
    };

    println!(
        "# WASO experiments — scale {:?}, seed {}, repeats {}\n",
        ctx.scale, ctx.seed, ctx.repeats
    );

    // Record-emitting figures (engine/pool backend sweeps, the decomp
    // ladder) accumulate machine-readable BenchRecords across the whole
    // invocation; one BENCH_engine.json is written at the end so a single
    // run can regenerate the complete committed yardstick.
    let mut bench_records = Vec::new();
    let mut engine_collected = false;
    for id in ids {
        let t0 = std::time::Instant::now();
        let set = match id {
            // `engine` and `pool` measure once for tables + records; the
            // two ids differ only in which tables the caller highlights,
            // so a run naming both contributes the records only once.
            "engine" | "pool" => {
                let (set, records) = waso_bench::experiments::engine::throughput_collect(&ctx);
                if !engine_collected {
                    bench_records.extend(records);
                    engine_collected = true;
                }
                set
            }
            "decomp" => {
                let (set, records) = waso_bench::experiments::decomp::ladder_collect(&ctx);
                bench_records.extend(records);
                set
            }
            _ => {
                let Some(set) = run_figure(id, &ctx) else {
                    eprintln!("unknown figure id '{id}'\n{}", usage());
                    return ExitCode::from(2);
                };
                set
            }
        };
        println!("{}", set.to_markdown());
        if let Err(e) = set.write_csvs(&args.out) {
            eprintln!("failed to write CSVs to {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[{id}] finished in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if !bench_records.is_empty() {
        let path = args.out.join("BENCH_engine.json");
        if let Err(e) = waso_bench::report::write_records_json(&bench_records, &path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("JSON written to {}", path.display());
    }
    println!("CSVs written to {}/", args.out.display());
    ExitCode::SUCCESS
}

//! # waso-bench
//!
//! The experiment harness: one module per figure of the paper's §5
//! evaluation, each regenerating the same series the paper plots
//! (see DESIGN.md §6 for the complete experiment index and EXPERIMENTS.md
//! for paper-vs-measured results).
//!
//! * [`report`] — result tables with markdown and CSV rendering;
//! * [`runner`] — shared measurement machinery (timed solver runs, sweep
//!   helpers, scale-dependent parameters);
//! * [`experiments`] — `fig4` … `fig9`, the per-figure drivers;
//! * `benches/` (Criterion) — micro-benchmarks of the hot paths and
//!   ablations of the design choices.
//!
//! The `waso-experiments` binary exposes all of this on the command line:
//!
//! ```text
//! waso-experiments --figure 5ab --scale small --out results/
//! waso-experiments --figure all --scale smoke
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;
pub mod runner;

pub use report::{Table, TableSet};
pub use runner::ExperimentContext;
pub use waso_datasets::Scale;

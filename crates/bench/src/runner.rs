//! Shared measurement machinery for the figure drivers.
//!
//! Solvers are obtained exclusively through [`SolverSpec`] → the
//! [`SolverRegistry`] (`waso::registry()`): the per-figure rosters, their
//! table columns, and the cost caps all derive from registry metadata, so
//! registering a new solver puts it in every figure without touching a
//! driver.

use std::time::Instant;

use waso_algos::{RegistryEntry, SolveError, Solver, SolverRegistry, SolverSpec};
use waso_core::WasoInstance;
use waso_datasets::Scale;

/// A timed solver run: quality, wall-clock seconds and sampling stats.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Willingness of the returned group (`None` when infeasible).
    pub quality: Option<f64>,
    /// Wall-clock seconds of the solve call.
    pub seconds: f64,
    /// Samples the solver reports having drawn.
    pub samples: u64,
    /// Whether the solver reported hitting a work cap (best-found result).
    pub truncated: bool,
    /// Sampling throughput: total samples over total wall-clock time
    /// (the [`waso_algos::SolverStats::samples_per_sec`] figure,
    /// aggregated across repeats for averaged measurements).
    pub samples_per_sec: f64,
}

/// `samples / seconds` guarded against empty or untimeable runs.
fn throughput(samples: u64, seconds: f64) -> f64 {
    if seconds > 0.0 && samples > 0 {
        samples as f64 / seconds
    } else {
        0.0
    }
}

/// Runs `solver` on `instance` and measures it. Infeasibility is recorded,
/// other solver errors (validation bugs) propagate loudly.
pub fn measure<S: Solver + ?Sized>(
    solver: &mut S,
    instance: &WasoInstance,
    seed: u64,
) -> Measurement {
    let t0 = Instant::now();
    let outcome = solver.solve_seeded(instance, seed);
    let seconds = t0.elapsed().as_secs_f64();
    match outcome {
        Ok(res) => Measurement {
            quality: Some(res.group.willingness()),
            seconds,
            samples: res.stats.samples_drawn,
            truncated: res.stats.truncated,
            samples_per_sec: throughput(res.stats.samples_drawn, seconds),
        },
        Err(SolveError::NoFeasibleGroup) => Measurement {
            quality: None,
            seconds,
            samples: 0,
            truncated: false,
            samples_per_sec: 0.0,
        },
        Err(e) => panic!("solver {} misbehaved: {e}", solver.name()),
    }
}

/// Averages `measure` over `repeats` seeds (quality mean over feasible
/// runs; time mean over all runs).
pub fn measure_avg<S: Solver + ?Sized>(
    solver: &mut S,
    instance: &WasoInstance,
    base_seed: u64,
    repeats: u32,
) -> Measurement {
    assert!(repeats >= 1);
    let mut q_sum = 0.0;
    let mut q_count = 0u32;
    let mut t_sum = 0.0;
    let mut samples = 0u64;
    let mut truncated = false;
    for r in 0..repeats {
        let m = measure(solver, instance, base_seed.wrapping_add(r as u64));
        if let Some(q) = m.quality {
            q_sum += q;
            q_count += 1;
        }
        t_sum += m.seconds;
        samples += m.samples;
        truncated |= m.truncated;
    }
    Measurement {
        quality: (q_count > 0).then(|| q_sum / q_count as f64),
        seconds: t_sum / repeats as f64,
        samples,
        truncated,
        samples_per_sec: throughput(samples, t_sum),
    }
}

/// One roster member: the registry entry plus the harness's spec for it.
#[derive(Debug)]
pub struct RosterSolver<'r> {
    /// The registry entry (label, capabilities, cost metadata).
    pub entry: &'r RegistryEntry,
    /// The spec the harness solves with.
    pub spec: SolverSpec,
}

impl RosterSolver<'_> {
    /// Repeats a measurement deserves: deterministic solvers are measured
    /// once, randomized ones averaged over the context's repeat count.
    pub fn repeats(&self, ctx: &ExperimentContext) -> u32 {
        if self.entry.capabilities.randomized {
            ctx.repeats
        } else {
            1
        }
    }
}

/// The paper's standard comparison roster at the harness's standard
/// settings: every registry entry with a roster rank, each with budget /
/// stages / start-node knobs applied *if the solver supports them* (the
/// supported-option lists come from the registry, not from per-solver
/// knowledge here).
pub fn roster_specs<'r>(
    registry: &'r SolverRegistry,
    budget: u64,
    stages: u32,
    m: Option<usize>,
) -> Vec<RosterSolver<'r>> {
    registry
        .roster()
        .into_iter()
        .map(|entry| RosterSolver {
            spec: harness_spec(entry, budget, stages, m),
            entry,
        })
        .collect()
}

/// The harness's standard spec for one registry entry (see
/// [`roster_specs`]).
pub fn harness_spec(
    entry: &RegistryEntry,
    budget: u64,
    stages: u32,
    m: Option<usize>,
) -> SolverSpec {
    let mut spec = SolverSpec::new(entry.name);
    if entry.options.contains(&"budget") {
        spec = spec.budget(budget);
    }
    if entry.options.contains(&"stages") {
        spec = spec.stages(stages);
    }
    if let Some(m) = m {
        if entry.options.contains(&"start-nodes") {
            spec = spec.start_nodes(m);
        }
    }
    spec
}

/// Builds the spec's solver from the registry and measures it.
/// Construction failures are bugs in the harness's spec derivation and
/// panic loudly.
pub fn measure_spec(
    registry: &SolverRegistry,
    spec: &SolverSpec,
    instance: &WasoInstance,
    seed: u64,
) -> Measurement {
    let mut solver = registry
        .build(spec)
        .unwrap_or_else(|e| panic!("harness built an unusable spec '{spec}': {e}"));
    measure(solver.as_mut(), instance, seed)
}

/// The per-solve-spawn baseline for batch comparisons: `jobs` identical
/// solves, each building the solver anew and (for pooled specs) spawning
/// a fresh worker pool — exactly what a caller without a session pays.
/// Quality is the mean over feasible jobs, `seconds` the mean per job,
/// `samples_per_sec` the aggregate throughput.
pub fn measure_spec_batch_baseline(
    registry: &SolverRegistry,
    spec: &SolverSpec,
    instance: &WasoInstance,
    seed: u64,
    jobs: usize,
) -> Measurement {
    assert!(jobs >= 1);
    let mut q_sum = 0.0;
    let mut q_count = 0u32;
    let mut t_sum = 0.0;
    let mut samples = 0u64;
    let mut truncated = false;
    for _ in 0..jobs {
        let m = measure_spec(registry, spec, instance, seed);
        if let Some(q) = m.quality {
            q_sum += q;
            q_count += 1;
        }
        t_sum += m.seconds;
        samples += m.samples;
        truncated |= m.truncated;
    }
    Measurement {
        quality: (q_count > 0).then(|| q_sum / q_count as f64),
        seconds: t_sum / jobs as f64,
        samples,
        truncated,
        samples_per_sec: throughput(samples, t_sum),
    }
}

/// Aggregates a slice of per-job session outcomes measured over
/// `seconds` of wall clock: quality mean over feasible jobs, `seconds`
/// the mean per job, `samples_per_sec` the aggregate throughput.
/// Spec-level failures are harness bugs and panic loudly; infeasible
/// jobs are recorded, like [`measure`].
fn aggregate_session_jobs(
    specs: &[SolverSpec],
    outcomes: Vec<Result<waso::algos::SolveResult, waso::SessionError>>,
    seconds: f64,
) -> Measurement {
    let mut q_sum = 0.0;
    let mut q_count = 0u32;
    let mut samples = 0u64;
    let mut truncated = false;
    for (spec, outcome) in specs.iter().zip(outcomes) {
        match outcome {
            Ok(res) => {
                q_sum += res.group.willingness();
                q_count += 1;
                samples += res.stats.samples_drawn;
                truncated |= res.stats.truncated;
            }
            Err(waso::SessionError::Solve(SolveError::NoFeasibleGroup)) => {}
            Err(e) => panic!("batch job '{spec}' misbehaved: {e}"),
        }
    }
    Measurement {
        quality: (q_count > 0).then(|| q_sum / q_count as f64),
        seconds: seconds / specs.len() as f64,
        samples,
        truncated,
        samples_per_sec: throughput(samples, seconds),
    }
}

/// Runs `specs` through one [`waso::WasoSession::solve_batch`] — the
/// instance validated and cloned once, every pooled job sharing the
/// session's worker pool, independent jobs running **concurrently** over
/// its scheduler — and measures the whole batch.
pub fn measure_session_batch(session: &waso::WasoSession, specs: &[SolverSpec]) -> Measurement {
    assert!(!specs.is_empty());
    let t0 = Instant::now();
    let outcomes = session
        .solve_batch(specs)
        .unwrap_or_else(|e| panic!("harness built an unusable batch session: {e}"));
    let seconds = t0.elapsed().as_secs_f64();
    aggregate_session_jobs(specs, outcomes, seconds)
}

/// Runs `specs` through one session **one job at a time** — the
/// sequential counterpart of [`measure_session_batch`]: same shared
/// instance and worker pool, no job-level concurrency. The gap between
/// the two rows is what the concurrent scheduler buys.
pub fn measure_session_each(session: &waso::WasoSession, specs: &[SolverSpec]) -> Measurement {
    assert!(!specs.is_empty());
    let t0 = Instant::now();
    let outcomes: Vec<_> = specs.iter().map(|spec| session.solve(spec)).collect();
    let seconds = t0.elapsed().as_secs_f64();
    aggregate_session_jobs(specs, outcomes, seconds)
}

/// Runs `specs` through explicit job handles, one at a time:
/// `submit(spec)` + `wait()` per job. Since the blocking
/// `WasoSession::solve` *is* submit+wait, the gap between this row and
/// [`measure_session_each`] is pure noise — the record exists so a future
/// divergence between the two paths (or a regression in the handle
/// plumbing: thread spawn, channels, control publishing) shows up in the
/// committed BENCH_engine.json trajectory.
pub fn measure_session_submit_wait(
    session: &waso::WasoSession,
    specs: &[SolverSpec],
) -> Measurement {
    assert!(!specs.is_empty());
    let t0 = Instant::now();
    let outcomes: Vec<_> = specs
        .iter()
        .map(|spec| session.submit(spec).and_then(|handle| handle.wait()))
        .collect();
    let seconds = t0.elapsed().as_secs_f64();
    aggregate_session_jobs(specs, outcomes, seconds)
}

/// [`measure_spec`] averaged over `repeats` seeds.
pub fn measure_spec_avg(
    registry: &SolverRegistry,
    spec: &SolverSpec,
    instance: &WasoInstance,
    base_seed: u64,
    repeats: u32,
) -> Measurement {
    let mut solver = registry
        .build(spec)
        .unwrap_or_else(|e| panic!("harness built an unusable spec '{spec}': {e}"));
    measure_avg(solver.as_mut(), instance, base_seed, repeats)
}

/// Scale-dependent experiment parameters shared across figure drivers.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Dataset / workload scale.
    pub scale: Scale,
    /// Master seed; every generated graph and solver run derives from it.
    pub seed: u64,
    /// Repetitions for averaged quality measurements.
    pub repeats: u32,
}

impl ExperimentContext {
    /// Context at a scale with the default seed.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            seed: 0xCAFE,
            repeats: match scale {
                Scale::Smoke => 1,
                Scale::Small => 3,
                Scale::Paper => 3,
            },
        }
    }

    /// The default total budget `T` at this scale.
    ///
    /// The paper's pseudo-code sets the *per-stage* budget
    /// `T₁ = m·ln(2(1-P_b)/(m-1))/ln α ≈ 500·m` at its defaults — orders of
    /// magnitude above the T axis of Figures 5(e,f). We use budgets that
    /// finish on a laptop and report the T-dependence explicitly in the
    /// budget-sweep figures.
    pub fn budget(&self) -> u64 {
        match self.scale {
            Scale::Smoke => 500,
            Scale::Small => 2000,
            Scale::Paper => 5000,
        }
    }

    /// The fixed start-node count used by the harness quality figures.
    ///
    /// §5.3.1 finds quality saturates at m = 500 on the 90k-node Facebook
    /// graph (m ≈ n/180, far below the n/k default); we keep the same
    /// proportionality, clamped for small graphs.
    pub fn harness_m(&self, n: usize) -> usize {
        (n / 180).clamp(8, 64)
    }

    /// Stage count used by the harness (the paper's r-derivation formula
    /// degenerates to r = 1 at realistic sizes; see
    /// `waso_algos::ocba::derive_stages`).
    pub fn stages(&self) -> u32 {
        10
    }

    /// Group-size sweep for the Facebook figures (5a/5b, 9c/9d).
    pub fn k_sweep_facebook(&self) -> Vec<usize> {
        match self.scale {
            Scale::Smoke => vec![10, 20],
            _ => vec![20, 40, 60, 80, 100],
        }
    }

    /// Group-size sweep for the DBLP/Flickr figures (7a/7b, 8a/8b).
    pub fn k_sweep_sparse(&self) -> Vec<usize> {
        match self.scale {
            Scale::Smoke => vec![10, 20],
            _ => vec![10, 20, 30, 40, 50],
        }
    }

    /// Network-size sweep for Figure 5(c).
    pub fn n_sweep(&self) -> Vec<usize> {
        match self.scale {
            Scale::Smoke => vec![500, 1000],
            Scale::Small => vec![500, 1000, 5000, 10_000],
            Scale::Paper => vec![500, 1000, 5000, 10_000, 50_000],
        }
    }

    /// Budget sweep for Figures 5(e/f), 7(e/f).
    pub fn t_sweep(&self) -> Vec<u64> {
        match self.scale {
            Scale::Smoke => vec![50, 100],
            _ => vec![200, 500, 1000, 2000, 5000],
        }
    }

    /// Start-node-count sweep for Figures 5(i/j), 7(c/d), scaled from the
    /// paper's {100, 200, 500, 1000, 2000} to the dataset size in use.
    pub fn m_sweep(&self, n: usize, k: usize) -> Vec<usize> {
        let cap = (n / k).max(2);
        let raw = match self.scale {
            Scale::Smoke => vec![5, 10, 20],
            _ => vec![10, 25, 50, 100, 200],
        };
        let mut out: Vec<usize> = raw.into_iter().map(|m| m.min(cap)).collect();
        out.dedup();
        out
    }

    /// The largest `k` at which *costly* solvers (per-candidate pricing,
    /// [`RegistryEntry::costly`] — RGreedy in the paper's roster) are
    /// still run: the paper aborts them beyond small groups — 12-hour
    /// timeouts on Facebook, §5.3.1.
    pub fn costly_k_limit(&self) -> usize {
        match self.scale {
            Scale::Smoke => 20,
            Scale::Small => 40,
            Scale::Paper => 20,
        }
    }

    /// Number of simulated participants per configuration in the §5.2
    /// study figures.
    pub fn study_participants(&self) -> u32 {
        match self.scale {
            Scale::Smoke => 4,
            Scale::Small => 20,
            Scale::Paper => 137,
        }
    }

    /// Branch-and-bound expansion cap for the Figure 9 IP runs.
    pub fn exact_cap(&self) -> u64 {
        match self.scale {
            Scale::Smoke => 2_000_000,
            Scale::Small => 20_000_000,
            Scale::Paper => 200_000_000,
        }
    }
}

/// Parses a scale name.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "smoke" => Some(Scale::Smoke),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_algos::DGreedy;
    use waso_graph::GraphBuilder;

    fn tiny_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let u = b.add_node(1.0);
        let v = b.add_node(2.0);
        b.add_edge_symmetric(u, v, 0.5).unwrap();
        WasoInstance::new(b.build(), 2).unwrap()
    }

    #[test]
    fn measure_reports_quality_and_time() {
        let m = measure(&mut DGreedy::new(), &tiny_instance(), 0);
        assert_eq!(m.quality, Some(4.0));
        assert!(m.seconds >= 0.0);
        assert_eq!(m.samples, 1);
    }

    #[test]
    fn measure_records_infeasibility() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        b.add_node(1.0);
        let inst = WasoInstance::new(b.build(), 2).unwrap();
        let m = measure(&mut DGreedy::new(), &inst, 0);
        assert_eq!(m.quality, None);
    }

    #[test]
    fn average_over_repeats() {
        let m = measure_avg(&mut DGreedy::new(), &tiny_instance(), 0, 3);
        assert_eq!(m.quality, Some(4.0));
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn throughput_aggregates_over_total_time() {
        assert_eq!(throughput(0, 1.0), 0.0);
        assert_eq!(throughput(10, 0.0), 0.0);
        assert_eq!(throughput(100, 0.5), 200.0);
        // Averaged measurements report total samples / total seconds, not
        // total samples / mean seconds.
        let m = measure_avg(&mut DGreedy::new(), &tiny_instance(), 0, 4);
        if m.seconds > 0.0 {
            let expect = m.samples as f64 / (m.seconds * 4.0);
            assert!(
                (m.samples_per_sec - expect).abs() < 1e-6 * expect.max(1.0),
                "{} vs {expect}",
                m.samples_per_sec
            );
        }
    }

    #[test]
    fn sweeps_scale_sanely() {
        let smoke = ExperimentContext::new(Scale::Smoke);
        let small = ExperimentContext::new(Scale::Small);
        assert!(smoke.budget() < small.budget());
        assert!(smoke.k_sweep_facebook().len() < small.k_sweep_facebook().len());
        // m sweep never exceeds n/k.
        let ms = small.m_sweep(100, 10);
        assert!(ms.iter().all(|&m| m <= 10));
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("smoke"), Some(Scale::Smoke));
        assert_eq!(parse_scale("small"), Some(Scale::Small));
        assert_eq!(parse_scale("paper"), Some(Scale::Paper));
        assert_eq!(parse_scale("huge"), None);
    }
}

//! Result tables: the harness's output format.
//!
//! Every figure driver returns [`Table`]s whose rows are the series the
//! paper plots (x value + one column per algorithm). Tables render as
//! GitHub markdown (for EXPERIMENTS.md) and CSV (for replotting).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A cell value: text, number, or absent ("the paper could not run this
/// configuration either").
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free text.
    Text(String),
    /// A number rendered with sensible precision.
    Num(f64),
    /// Missing / not applicable.
    Missing,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(x) => format_num(*x),
            Cell::Missing => "—".to_string(),
        }
    }

    fn render_csv(&self) -> String {
        match self {
            Cell::Text(s) => {
                if s.contains(',') || s.contains('"') {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.clone()
                }
            }
            Cell::Num(x) => format_num(*x),
            Cell::Missing => String::new(),
        }
    }
}

impl From<f64> for Cell {
    fn from(x: f64) -> Self {
        Cell::Num(x)
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<usize> for Cell {
    fn from(x: usize) -> Self {
        Cell::Num(x as f64)
    }
}

impl From<u64> for Cell {
    fn from(x: u64) -> Self {
        Cell::Num(x as f64)
    }
}

/// Compact numeric formatting: integers plain, large values with few
/// decimals, small values with more.
fn format_num(x: f64) -> String {
    if !x.is_finite() {
        return x.to_string();
    }
    if x == x.trunc() && x.abs() < 1e12 {
        return format!("{}", x as i64);
    }
    let ax = x.abs();
    if ax >= 100.0 {
        format!("{x:.1}")
    } else if ax >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

/// One result table (≈ one figure panel).
#[derive(Debug, Clone)]
pub struct Table {
    /// Stable identifier, e.g. `fig5b`.
    pub id: String,
    /// Human title, e.g. `Figure 5(b): solution quality vs k (Facebook)`.
    pub title: String,
    /// Column headers; the first column is the x-axis.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the arity does not match the header.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "table {}: row arity {} != {} columns",
            self.id,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders as a GitHub markdown table with a title line.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render).collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render_csv).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// A batch of tables produced by one figure driver.
#[derive(Debug, Clone, Default)]
pub struct TableSet {
    /// The tables, in presentation order.
    pub tables: Vec<Table>,
}

impl TableSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table.
    pub fn push(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Concatenated markdown of every table.
    pub fn to_markdown(&self) -> String {
        self.tables
            .iter()
            .map(Table::to_markdown)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Writes every table's CSV into `dir`.
    pub fn write_csvs(&self, dir: &Path) -> io::Result<()> {
        for t in &self.tables {
            t.write_csv(dir)?;
        }
        Ok(())
    }

    /// Merges another set into this one.
    pub fn extend(&mut self, other: TableSet) {
        self.tables.extend(other.tables);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("fig0", "demo", &["k", "DGreedy", "CBAS-ND"]);
        t.push_row(vec![Cell::from(20usize), Cell::from(415.2), Cell::Missing]);
        t.push_row(vec![
            Cell::from(40usize),
            Cell::from(700.0),
            Cell::from("1.25e3"),
        ]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample_table().to_markdown();
        assert!(md.contains("### fig0 — demo"));
        assert!(md.contains("| k | DGreedy | CBAS-ND |"));
        assert!(md.contains("| 20 | 415.2 | — |"));
        assert!(md.contains("| 40 | 700 | 1.25e3 |"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "k,DGreedy,CBAS-ND");
        assert_eq!(lines[1], "20,415.2,");
        assert_eq!(lines[2], "40,700,1.25e3");
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("x", "t", &["a"]);
        t.push_row(vec![Cell::from("hello, world")]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.push_row(vec![Cell::from(1.0)]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(20.0), "20");
        assert_eq!(format_num(415.24), "415.2");
        assert_eq!(format_num(4.35719), "4.357");
        assert_eq!(format_num(0.01234), "0.01234");
    }

    #[test]
    fn csv_files_written() {
        let dir = std::env::temp_dir().join("waso-bench-test-report");
        let _ = std::fs::remove_dir_all(&dir);
        let mut set = TableSet::new();
        set.push(sample_table());
        set.write_csvs(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig0.csv")).unwrap();
        assert!(content.starts_with("k,DGreedy"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

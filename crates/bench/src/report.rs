//! Result tables and perf records: the harness's output formats.
//!
//! Every figure driver returns [`Table`]s whose rows are the series the
//! paper plots (x value + one column per algorithm). Tables render as
//! GitHub markdown (for EXPERIMENTS.md) and CSV (for replotting).
//!
//! The engine-throughput trajectory additionally emits machine-readable
//! [`BenchRecord`]s (workload, solver spec, quality, wall seconds,
//! samples/sec, thread count) rendered as JSON — the committed
//! `BENCH_engine.json` yardstick future perf PRs diff against.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A cell value: text, number, or absent ("the paper could not run this
/// configuration either").
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free text.
    Text(String),
    /// A number rendered with sensible precision.
    Num(f64),
    /// Missing / not applicable.
    Missing,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(x) => format_num(*x),
            Cell::Missing => "—".to_string(),
        }
    }

    fn render_csv(&self) -> String {
        match self {
            Cell::Text(s) => {
                if s.contains(',') || s.contains('"') {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.clone()
                }
            }
            Cell::Num(x) => format_num(*x),
            Cell::Missing => String::new(),
        }
    }
}

impl From<f64> for Cell {
    fn from(x: f64) -> Self {
        Cell::Num(x)
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<usize> for Cell {
    fn from(x: usize) -> Self {
        Cell::Num(x as f64)
    }
}

impl From<u64> for Cell {
    fn from(x: u64) -> Self {
        Cell::Num(x as f64)
    }
}

/// Compact numeric formatting: integers plain, large values with few
/// decimals, small values with more.
fn format_num(x: f64) -> String {
    if !x.is_finite() {
        return x.to_string();
    }
    if x == x.trunc() && x.abs() < 1e12 {
        return format!("{}", x as i64);
    }
    let ax = x.abs();
    if ax >= 100.0 {
        format!("{x:.1}")
    } else if ax >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

/// One result table (≈ one figure panel).
#[derive(Debug, Clone)]
pub struct Table {
    /// Stable identifier, e.g. `fig5b`.
    pub id: String,
    /// Human title, e.g. `Figure 5(b): solution quality vs k (Facebook)`.
    pub title: String,
    /// Column headers; the first column is the x-axis.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the arity does not match the header.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "table {}: row arity {} != {} columns",
            self.id,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders as a GitHub markdown table with a title line.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render).collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render_csv).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// A batch of tables produced by one figure driver.
#[derive(Debug, Clone, Default)]
pub struct TableSet {
    /// The tables, in presentation order.
    pub tables: Vec<Table>,
}

impl TableSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table.
    pub fn push(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Concatenated markdown of every table.
    pub fn to_markdown(&self) -> String {
        self.tables
            .iter()
            .map(Table::to_markdown)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Writes every table's CSV into `dir`.
    pub fn write_csvs(&self, dir: &Path) -> io::Result<()> {
        for t in &self.tables {
            t.write_csv(dir)?;
        }
        Ok(())
    }

    /// Merges another set into this one.
    pub fn extend(&mut self, other: TableSet) {
        self.tables.extend(other.tables);
    }
}

/// One machine-readable throughput measurement of the perf trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload identifier, e.g. `facebook-like/n=300/k=10`.
    pub workload: String,
    /// The solver spec string the run was built from.
    pub solver: String,
    /// Worker threads (0 = the solver's serial path).
    pub threads: usize,
    /// Mean willingness over the measured repeats (`null` when every
    /// repeat was infeasible).
    pub mean_quality: Option<f64>,
    /// Mean wall-clock seconds per solve.
    pub wall_seconds: f64,
    /// Aggregate sampling throughput over the measured repeats.
    pub samples_per_sec: f64,
}

/// Minimal JSON string escaping (the only string fields are workload and
/// spec names, but quotes/backslashes must not corrupt the file).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string() // JSON has no Inf/NaN
    }
}

/// Renders the records as a pretty-printed JSON array (stable field
/// order, one record per object) — hand-rolled, the workspace vendors no
/// serde.
pub fn records_to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"workload\": \"{}\", \"solver\": \"{}\", \"threads\": {}, \
             \"mean_quality\": {}, \"wall_seconds\": {}, \"samples_per_sec\": {}}}",
            json_escape(&r.workload),
            json_escape(&r.solver),
            r.threads,
            r.mean_quality.map_or("null".to_string(), json_num),
            json_num(r.wall_seconds),
            json_num(r.samples_per_sec),
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Writes the records as JSON to `path` (creating parent directories).
pub fn write_records_json(records: &[BenchRecord], path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, records_to_json(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("fig0", "demo", &["k", "DGreedy", "CBAS-ND"]);
        t.push_row(vec![Cell::from(20usize), Cell::from(415.2), Cell::Missing]);
        t.push_row(vec![
            Cell::from(40usize),
            Cell::from(700.0),
            Cell::from("1.25e3"),
        ]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample_table().to_markdown();
        assert!(md.contains("### fig0 — demo"));
        assert!(md.contains("| k | DGreedy | CBAS-ND |"));
        assert!(md.contains("| 20 | 415.2 | — |"));
        assert!(md.contains("| 40 | 700 | 1.25e3 |"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "k,DGreedy,CBAS-ND");
        assert_eq!(lines[1], "20,415.2,");
        assert_eq!(lines[2], "40,700,1.25e3");
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("x", "t", &["a"]);
        t.push_row(vec![Cell::from("hello, world")]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.push_row(vec![Cell::from(1.0)]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(20.0), "20");
        assert_eq!(format_num(415.24), "415.2");
        assert_eq!(format_num(4.35719), "4.357");
        assert_eq!(format_num(0.01234), "0.01234");
    }

    #[test]
    fn bench_records_render_as_json() {
        let records = vec![
            BenchRecord {
                workload: "facebook-like/k=10".into(),
                solver: "cbas-nd:budget=2000,stages=10".into(),
                threads: 0,
                mean_quality: Some(123.456789),
                wall_seconds: 0.25,
                samples_per_sec: 8000.0,
            },
            BenchRecord {
                workload: "planted\"weird\"".into(),
                solver: "cbas-nd:threads=8".into(),
                threads: 8,
                mean_quality: None,
                wall_seconds: 0.5,
                samples_per_sec: f64::NAN,
            },
        ];
        let json = records_to_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"mean_quality\": 123.456789"));
        assert!(json.contains("\"threads\": 8"));
        assert!(json.contains("\"mean_quality\": null"));
        assert!(json.contains("\"samples_per_sec\": null"), "NaN → null");
        assert!(json.contains("planted\\\"weird\\\""), "quotes escaped");
        // Exactly one comma separator between the two records.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn bench_records_json_written_to_disk() {
        let dir = std::env::temp_dir().join("waso-bench-test-json");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("BENCH_engine.json");
        let records = vec![BenchRecord {
            workload: "w".into(),
            solver: "s".into(),
            threads: 1,
            mean_quality: Some(1.0),
            wall_seconds: 0.1,
            samples_per_sec: 10.0,
        }];
        write_records_json(&records, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"workload\": \"w\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_files_written() {
        let dir = std::env::temp_dir().join("waso-bench-test-report");
        let _ = std::fs::remove_dir_all(&dir);
        let mut set = TableSet::new();
        set.push(sample_table());
        set.write_csvs(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig0.csv")).unwrap();
        assert!(content.starts_with("k,DGreedy"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Exact-solver benchmarks: ESU enumeration vs branch-and-bound, and the
//! value of priming the incumbent — the machinery behind the Figure 9(a,b)
//! IP comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use waso_algos::{CbasNd, CbasNdConfig, Solver};
use waso_core::WasoInstance;
use waso_datasets::synthetic;
use waso_exact::enumerate::count_connected_k_subgraphs;
use waso_exact::BranchBound;

fn small_instance(n: usize, k: usize) -> WasoInstance {
    let g = synthetic::dblp_like_n(n, 3);
    WasoInstance::new(g, k).unwrap()
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_enumeration");
    group.sample_size(10);
    for (n, k) in [(25usize, 5usize), (40, 4)] {
        let inst = small_instance(n, k);
        group.bench_with_input(
            BenchmarkId::new("esu_count", format!("n{n}_k{k}")),
            &inst,
            |b, inst| {
                b.iter(|| black_box(count_connected_k_subgraphs(inst.graph(), inst.k())));
            },
        );
    }
    group.finish();
}

fn bench_branch_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_bound");
    group.sample_size(10);
    for (n, k) in [(25usize, 6usize), (60, 5)] {
        let inst = small_instance(n, k);
        group.bench_with_input(
            BenchmarkId::new("cold", format!("n{n}_k{k}")),
            &inst,
            |b, inst| {
                b.iter(|| black_box(BranchBound::new().solve(inst, None)));
            },
        );
        // Primed with a CBAS-ND incumbent: measures how much heuristic
        // warm-starting prunes.
        let mut cfg = CbasNdConfig::with_budget(100);
        cfg.base.stages = Some(3);
        let incumbent = CbasNd::new(cfg).solve_seeded(&inst, 1).unwrap().group;
        group.bench_with_input(
            BenchmarkId::new("primed", format!("n{n}_k{k}")),
            &inst,
            |b, inst| {
                b.iter(|| black_box(BranchBound::new().solve(inst, Some(&incumbent))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_branch_bound);
criterion_main!(benches);

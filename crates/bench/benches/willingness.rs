//! Micro-benchmarks of the objective function — the innermost loop of
//! every solver (full evaluation vs incremental marginal gain; the pair
//! weights cached in the CSR are what makes the incremental form one
//! adjacency scan).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use waso_core::{marginal_gain, willingness};
use waso_datasets::synthetic;
use waso_graph::{BitSet, NodeId};

fn bench_willingness(c: &mut Criterion) {
    let g = synthetic::facebook_like_n(2000, 7);
    let mut group = c.benchmark_group("willingness");

    for k in [10usize, 50, 100] {
        // A connected-ish node set: a hub and its lowest-id neighbours.
        let hub = g
            .node_ids()
            .max_by_key(|&v| g.degree(v))
            .expect("non-empty");
        let mut nodes = vec![hub];
        nodes.extend(g.neighbors(hub).iter().take(k - 1).map(|&j| NodeId(j)));

        group.bench_with_input(BenchmarkId::new("full_eval", k), &nodes, |b, nodes| {
            b.iter(|| black_box(willingness(&g, black_box(nodes))));
        });

        let mut members = BitSet::new(g.num_nodes());
        for &v in &nodes[..nodes.len() - 1] {
            members.insert(v.index());
        }
        let candidate = *nodes.last().expect("k >= 1");
        group.bench_with_input(
            BenchmarkId::new("marginal_gain", k),
            &candidate,
            |b, &cand| {
                b.iter(|| black_box(marginal_gain(&g, &members, black_box(cand))));
            },
        );
    }
    group.finish();
}

fn bench_group_validation(c: &mut Criterion) {
    let g = synthetic::facebook_like_n(2000, 7);
    let hub = g.node_ids().max_by_key(|&v| g.degree(v)).unwrap();
    let mut nodes = vec![hub];
    nodes.extend(g.neighbors(hub).iter().take(19).map(|&j| NodeId(j)));
    let inst = waso_core::WasoInstance::new(g, 20).unwrap();

    c.bench_function("group_validation_k20", |b| {
        b.iter_batched(
            || nodes.clone(),
            |nodes| black_box(waso_core::Group::new(&inst, nodes).unwrap()),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_willingness, bench_group_validation);
criterion_main!(benches);

//! End-to-end solver benchmarks — the Criterion counterpart of the
//! Figure 5(a) time series at a laptop-friendly size (the full sweep lives
//! in `waso-experiments --figure 5ab`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use waso_algos::{
    Cbas, CbasConfig, CbasNd, CbasNdConfig, DGreedy, ParallelCbasNd, RGreedy, RGreedyConfig, Solver,
};
use waso_core::WasoInstance;
use waso_datasets::synthetic;

fn configs(budget: u64) -> (CbasConfig, CbasNdConfig) {
    let mut cb = CbasConfig::with_budget(budget);
    cb.stages = Some(5);
    cb.num_start_nodes = Some(8);
    let mut nd = CbasNdConfig::with_budget(budget);
    nd.base = cb.clone();
    (cb, nd)
}

fn bench_solvers(c: &mut Criterion) {
    let g = synthetic::facebook_like_n(1000, 7);
    let k = 15;
    let inst = WasoInstance::new(g, k).unwrap();
    let budget = 300;
    let (cb_cfg, nd_cfg) = configs(budget);

    let mut group = c.benchmark_group("solver_end_to_end");
    group.sample_size(20);

    group.bench_function("dgreedy", |b| {
        b.iter(|| black_box(DGreedy::new().solve_seeded(&inst, 1).unwrap()));
    });
    group.bench_function("cbas", |b| {
        b.iter(|| black_box(Cbas::new(cb_cfg.clone()).solve_seeded(&inst, 1).unwrap()));
    });
    group.bench_function("cbas_nd", |b| {
        b.iter(|| black_box(CbasNd::new(nd_cfg.clone()).solve_seeded(&inst, 1).unwrap()));
    });
    group.bench_function("cbas_nd_gaussian", |b| {
        b.iter(|| {
            black_box(
                CbasNd::new(nd_cfg.clone().gaussian())
                    .solve_seeded(&inst, 1)
                    .unwrap(),
            )
        });
    });
    group.bench_function("rgreedy", |b| {
        let mut cfg = RGreedyConfig::with_budget(budget);
        cfg.num_start_nodes = Some(8);
        b.iter(|| black_box(RGreedy::new(cfg.clone()).solve_seeded(&inst, 1).unwrap()));
    });
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let g = synthetic::facebook_like_n(1000, 7);
    let inst = WasoInstance::new(g, 15).unwrap();
    let (_, nd_cfg) = configs(1200);

    let mut group = c.benchmark_group("parallel_cbas_nd");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(
                    ParallelCbasNd::new(nd_cfg.clone(), t)
                        .solve_seeded(&inst, 1)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_parallel);
criterion_main!(benches);

//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * neighbour differentiation on/off (CBAS-ND vs CBAS at equal budget) —
//!   quality deltas are in the figure harness; here we price the overhead;
//! * smoothing weight `w = 0` (the Theorem-6 "CBAS-ND degenerates to CBAS"
//!   identity) vs the paper's `w = 0.9`;
//! * backtracking on/off (§4.4.2);
//! * RGreedy's Δ-proportional selection vs the paper's literal
//!   `W(S ∪ {v})` weights (see `waso_algos::rgreedy` module docs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use waso_algos::{Cbas, CbasConfig, CbasNd, CbasNdConfig, RGreedy, RGreedyConfig, Solver};
use waso_core::WasoInstance;
use waso_datasets::synthetic;

fn base_nd(budget: u64) -> CbasNdConfig {
    let mut cfg = CbasNdConfig::with_budget(budget);
    cfg.base.stages = Some(5);
    cfg.base.num_start_nodes = Some(8);
    cfg
}

fn bench_differentiation_overhead(c: &mut Criterion) {
    let g = synthetic::facebook_like_n(1000, 7);
    let inst = WasoInstance::new(g, 20).unwrap();
    let budget = 300;

    let mut group = c.benchmark_group("ablation_differentiation");
    group.sample_size(15);
    group.bench_function("cbas_uniform", |b| {
        let mut cfg = CbasConfig::with_budget(budget);
        cfg.stages = Some(5);
        cfg.num_start_nodes = Some(8);
        b.iter(|| black_box(Cbas::new(cfg.clone()).solve_seeded(&inst, 1).unwrap()));
    });
    group.bench_function("cbas_nd_weighted", |b| {
        let cfg = base_nd(budget);
        b.iter(|| black_box(CbasNd::new(cfg.clone()).solve_seeded(&inst, 1).unwrap()));
    });
    group.finish();
}

fn bench_smoothing_extremes(c: &mut Criterion) {
    let g = synthetic::facebook_like_n(1000, 7);
    let inst = WasoInstance::new(g, 20).unwrap();

    let mut group = c.benchmark_group("ablation_smoothing");
    group.sample_size(15);
    for (name, w) in [("w0_degenerate_cbas", 0.0), ("w09_paper", 0.9)] {
        let mut cfg = base_nd(300);
        cfg.smoothing = w;
        group.bench_function(name, |b| {
            b.iter(|| black_box(CbasNd::new(cfg.clone()).solve_seeded(&inst, 1).unwrap()));
        });
    }
    group.finish();
}

fn bench_backtracking(c: &mut Criterion) {
    let g = synthetic::facebook_like_n(1000, 7);
    let inst = WasoInstance::new(g, 20).unwrap();

    let mut group = c.benchmark_group("ablation_backtracking");
    group.sample_size(15);
    group.bench_function("off", |b| {
        let cfg = base_nd(300);
        b.iter(|| black_box(CbasNd::new(cfg.clone()).solve_seeded(&inst, 1).unwrap()));
    });
    group.bench_function("on", |b| {
        let cfg = base_nd(300).with_backtracking(1e-4);
        b.iter(|| black_box(CbasNd::new(cfg.clone()).solve_seeded(&inst, 1).unwrap()));
    });
    group.finish();
}

fn bench_rgreedy_weighting(c: &mut Criterion) {
    let g = synthetic::facebook_like_n(1000, 7);
    let inst = WasoInstance::new(g, 20).unwrap();

    let mut group = c.benchmark_group("ablation_rgreedy_weights");
    group.sample_size(15);
    for (name, include_base) in [("delta_proportional", false), ("paper_literal", true)] {
        let mut cfg = RGreedyConfig::with_budget(100);
        cfg.num_start_nodes = Some(8);
        cfg.include_base_willingness = include_base;
        group.bench_function(name, |b| {
            b.iter(|| black_box(RGreedy::new(cfg.clone()).solve_seeded(&inst, 1).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_differentiation_overhead,
    bench_smoothing_extremes,
    bench_backtracking,
    bench_rgreedy_weighting
);
criterion_main!(benches);

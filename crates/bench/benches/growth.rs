//! Sample-growth benchmarks: the cost of one CBAS (uniform) vs one CBAS-ND
//! (probability-weighted) sample — the paper's claim that neighbour
//! differentiation costs only a modest overhead over uniform selection
//! (§4.3 complexity discussion, Figure 5(e)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use waso_algos::cross_entropy::ProbabilityVector;
use waso_algos::sampler::{select_start_nodes, Sampler};
use waso_core::WasoInstance;
use waso_datasets::synthetic;

fn bench_growth(c: &mut Criterion) {
    let g = synthetic::facebook_like_n(2000, 7);
    let n = g.num_nodes();
    let mut group = c.benchmark_group("sample_growth");

    for k in [10usize, 30, 60] {
        let inst = WasoInstance::new(g.clone(), k).unwrap();
        let start = select_start_nodes(inst.graph(), 1, None)[0];

        group.bench_with_input(BenchmarkId::new("uniform", k), &inst, |b, inst| {
            let mut sampler = Sampler::new(n);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(sampler.sample_uniform(inst, start, &mut rng)));
        });

        let probs = ProbabilityVector::uniform_for_start(n, k, start);
        group.bench_with_input(BenchmarkId::new("weighted", k), &inst, |b, inst| {
            let mut sampler = Sampler::new(n);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(sampler.sample_weighted(inst, start, &probs, &mut rng)));
        });
    }
    group.finish();
}

fn bench_unconstrained_growth(c: &mut Criterion) {
    // WASO-dis growth offers the whole node set as candidates — measure the
    // price of that frontier (Figure 9(c)'s cost driver).
    let g = synthetic::facebook_like_n(2000, 7);
    let inst = WasoInstance::without_connectivity(g.clone(), 20).unwrap();
    let start = select_start_nodes(&g, 1, None)[0];
    c.bench_function("sample_growth/unconstrained_k20", |b| {
        let mut sampler = Sampler::new(g.num_nodes());
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(sampler.sample_uniform(&inst, start, &mut rng)));
    });
}

criterion_group!(benches, bench_growth, bench_unconstrained_growth);
criterion_main!(benches);

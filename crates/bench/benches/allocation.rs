//! Budget-allocation and cross-entropy-update micro-benchmarks: the
//! per-stage bookkeeping of CBAS/CBAS-ND (Theorem 3's uniform rule vs
//! Appendix A's quadrature-based Gaussian rule, and the Eq.-(4) sparse
//! vector update).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use waso_algos::cross_entropy::ProbabilityVector;
use waso_algos::gaussian::{allocate_stage_gaussian, GaussStats};
use waso_algos::ocba::{allocate_stage, StartStats};
use waso_algos::sampler::Sample;
use waso_graph::NodeId;
use waso_stats::Welford;

fn make_uniform_stats(m: usize) -> Vec<StartStats> {
    (0..m)
        .map(|i| StartStats {
            worst: 5.0 + (i % 7) as f64,
            best: 20.0 + (i % 13) as f64,
            spent: 40,
            pruned: false,
        })
        .collect()
}

fn make_gauss_stats(m: usize) -> Vec<GaussStats> {
    (0..m)
        .map(|i| {
            let mut w = Welford::new();
            let mu = 20.0 + (i % 13) as f64;
            for d in [-2.0, -1.0, 0.0, 1.0, 2.0] {
                w.push(mu + d);
            }
            GaussStats {
                moments: w,
                spent: 40,
                pruned: false,
            }
        })
        .collect()
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_allocation");
    for m in [10usize, 100, 500] {
        let uni = make_uniform_stats(m);
        group.bench_with_input(BenchmarkId::new("uniform_ocba", m), &uni, |b, stats| {
            b.iter(|| black_box(allocate_stage(black_box(stats), 1000)));
        });
        let gauss = make_gauss_stats(m);
        group.bench_with_input(BenchmarkId::new("gaussian", m), &gauss, |b, stats| {
            b.iter(|| black_box(allocate_stage_gaussian(black_box(stats), 1000)));
        });
    }
    group.finish();
}

fn bench_ce_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_entropy_update");
    for (elites, k) in [(10usize, 20usize), (50, 50)] {
        let samples: Vec<Sample> = (0..elites)
            .map(|i| Sample {
                nodes: (0..k as u32).map(|j| NodeId(j * 7 + i as u32)).collect(),
                willingness: 10.0 + i as f64,
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("update", format!("{elites}x{k}")),
            &samples,
            |b, samples| {
                b.iter(|| {
                    let mut p = ProbabilityVector::uniform(10_000, k);
                    let refs: Vec<&Sample> = samples.iter().collect();
                    p.update_from_elites(&refs, 0.9);
                    black_box(p)
                });
            },
        );
    }
    group.finish();
}

fn bench_distance(c: &mut Criterion) {
    // Backtracking's z distance over sparse vectors (§4.4.2).
    let mk = |shift: u32| {
        let mut p = ProbabilityVector::uniform(100_000, 20);
        let s = Sample {
            nodes: (0..20u32).map(|j| NodeId(j + shift)).collect(),
            willingness: 1.0,
        };
        p.update_from_elites(&[&s], 0.9);
        p
    };
    let a = mk(0);
    let b2 = mk(5);
    c.bench_function("cross_entropy_update/distance_sq_sparse", |b| {
        b.iter(|| black_box(a.distance_sq(black_box(&b2))));
    });
}

criterion_group!(benches, bench_allocation, bench_ce_update, bench_distance);
criterion_main!(benches);

//! Exhaustive enumeration of connected induced `k`-subgraphs (ESU).
//!
//! Wernicke's ESU algorithm enumerates every connected induced subgraph of
//! size `k` exactly once: from each root `v` it only extends with nodes of
//! larger id drawn from the *exclusive* neighbourhood of the current
//! subgraph. Exponential, of course — WASO is NP-hard (Theorem 1) — but on
//! user-study-sized graphs (§5.2: n ≤ 30) it is instant, and it is the
//! oracle that the branch-and-bound and every randomized solver are tested
//! against.

use waso_core::{willingness, Group, WasoInstance};
use waso_graph::{BitSet, NodeId, SocialGraph};

/// Calls `visit` once for every connected induced subgraph of exactly `k`
/// nodes. The slice handed to `visit` lists the member ids in discovery
/// order (the root first).
pub fn enumerate_connected_k_subgraphs<F: FnMut(&[NodeId])>(
    g: &SocialGraph,
    k: usize,
    mut visit: F,
) {
    if k == 0 || k > g.num_nodes() {
        return;
    }
    let n = g.num_nodes();
    let mut sub: Vec<NodeId> = Vec::with_capacity(k);
    // nbhd = sub ∪ N(sub): used to compute exclusive neighbourhoods.
    let mut nbhd = BitSet::new(n);

    for root in 0..n as u32 {
        let root_id = NodeId(root);
        sub.push(root_id);
        nbhd.insert(root as usize);
        let mut touched: Vec<u32> = vec![root];
        let mut ext: Vec<u32> = Vec::new();
        for &u in g.neighbors(root_id) {
            if nbhd.insert(u as usize) {
                touched.push(u);
            }
            if u > root {
                ext.push(u);
            }
        }
        extend(g, k, root, &mut sub, ext, &mut nbhd, &mut visit);
        for &u in &touched {
            nbhd.remove(u as usize);
        }
        sub.pop();
    }
}

fn extend<F: FnMut(&[NodeId])>(
    g: &SocialGraph,
    k: usize,
    root: u32,
    sub: &mut Vec<NodeId>,
    mut ext: Vec<u32>,
    nbhd: &mut BitSet,
    visit: &mut F,
) {
    if sub.len() == k {
        visit(sub);
        return;
    }
    // Take candidates one at a time; each candidate w spawns a branch whose
    // extension set adds w's exclusive neighbours (> root). Removing w from
    // `ext` before branching guarantees each subset appears exactly once.
    while let Some(w) = ext.pop() {
        sub.push(NodeId(w));
        // Newly reachable exclusive neighbours of w.
        let mut touched: Vec<u32> = Vec::new();
        let mut next_ext = ext.clone();
        for &u in g.neighbors(NodeId(w)) {
            if nbhd.insert(u as usize) {
                touched.push(u);
                if u > root {
                    next_ext.push(u);
                }
            }
        }
        extend(g, k, root, sub, next_ext, nbhd, visit);
        for &u in &touched {
            nbhd.remove(u as usize);
        }
        sub.pop();
    }
}

/// Counts the connected induced `k`-subgraphs (diagnostics / tests).
pub fn count_connected_k_subgraphs(g: &SocialGraph, k: usize) -> u64 {
    let mut count = 0u64;
    enumerate_connected_k_subgraphs(g, k, |_| count += 1);
    count
}

/// Brute-force optimum over feasible groups satisfying `predicate` — e.g.
/// "contains the initiator" for the user study's `-i` problems (§5.2).
/// `None` when no group passes.
pub fn exhaustive_optimum_where<P: FnMut(&[NodeId]) -> bool>(
    instance: &WasoInstance,
    mut predicate: P,
) -> Option<Group> {
    let g = instance.graph();
    let k = instance.k();
    let mut best: Option<(f64, Vec<NodeId>)> = None;
    if instance.requires_connectivity() {
        enumerate_connected_k_subgraphs(g, k, |nodes| {
            if !predicate(nodes) {
                return;
            }
            let w = willingness(g, nodes);
            if best.as_ref().is_none_or(|(bw, _)| w > *bw) {
                best = Some((w, nodes.to_vec()));
            }
        });
        best.map(|(_, nodes)| Group::new_unchecked(instance, nodes))
    } else {
        // Delegate to the unconstrained enumerator with filtering.
        let unfiltered = exhaustive_optimum(instance)?;
        if predicate(unfiltered.nodes()) {
            return Some(unfiltered);
        }
        // Rare path: re-enumerate keeping the best passing combination.
        let n = g.num_nodes();
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            let nodes: Vec<NodeId> = combo.iter().map(|&i| NodeId(i as u32)).collect();
            if predicate(&nodes) {
                let w = willingness(g, &nodes);
                if best.as_ref().is_none_or(|(bw, _)| w > *bw) {
                    best = Some((w, nodes));
                }
            }
            let mut i = k;
            loop {
                if i == 0 {
                    return best.map(|(_, nodes)| Group::new_unchecked(instance, nodes));
                }
                i -= 1;
                if combo[i] != i + n - k {
                    break;
                }
            }
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
        }
    }
}

/// Brute-force optimum by full enumeration. `None` when no feasible group
/// exists. The ground-truth oracle for small instances.
pub fn exhaustive_optimum(instance: &WasoInstance) -> Option<Group> {
    let g = instance.graph();
    let k = instance.k();
    let mut best: Option<(f64, Vec<NodeId>)> = None;

    if instance.requires_connectivity() {
        enumerate_connected_k_subgraphs(g, k, |nodes| {
            let w = willingness(g, nodes);
            if best.as_ref().is_none_or(|(bw, _)| w > *bw) {
                best = Some((w, nodes.to_vec()));
            }
        });
    } else {
        // Unconstrained: all k-combinations in lexicographic order.
        let n = g.num_nodes();
        if k > n {
            return None;
        }
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            let nodes: Vec<NodeId> = combo.iter().map(|&i| NodeId(i as u32)).collect();
            let w = willingness(g, &nodes);
            if best.as_ref().is_none_or(|(bw, _)| w > *bw) {
                best = Some((w, nodes));
            }
            // Next combination.
            let mut i = k;
            loop {
                if i == 0 {
                    return best.map(|(_, nodes)| Group::new_unchecked(instance, nodes));
                }
                i -= 1;
                if combo[i] != i + n - k {
                    break;
                }
            }
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
        }
    }
    best.map(|(_, nodes)| Group::new_unchecked(instance, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use waso_graph::{generate, GraphBuilder};

    fn unit(topo: waso_graph::GraphTopology) -> SocialGraph {
        topo.into_unit_graph()
    }

    #[test]
    fn path_counts_are_exact() {
        // A path of n nodes has exactly n-k+1 connected k-subgraphs.
        let g = unit(generate::path_topology(7));
        for k in 1..=7 {
            assert_eq!(
                count_connected_k_subgraphs(&g, k),
                (7 - k + 1) as u64,
                "k = {k}"
            );
        }
    }

    #[test]
    fn complete_graph_counts_are_binomial() {
        // In K_5 every subset is connected: C(5, k).
        let g = unit(generate::complete_topology(5));
        let binom = [0, 5, 10, 10, 5, 1];
        #[allow(clippy::needless_range_loop)] // k is the group size under test
        for k in 1..=5 {
            assert_eq!(count_connected_k_subgraphs(&g, k), binom[k] as u64);
        }
    }

    #[test]
    fn star_pairs_all_contain_the_centre_for_k3() {
        // In a star, any connected subgraph of size ≥ 2 contains the centre:
        // count of size-3 = C(n-1, 2).
        let g = unit(generate::star_topology(6));
        assert_eq!(count_connected_k_subgraphs(&g, 3), 10);
        let mut all_contain_center = true;
        enumerate_connected_k_subgraphs(&g, 3, |nodes| {
            if !nodes.contains(&NodeId(0)) {
                all_contain_center = false;
            }
        });
        assert!(all_contain_center);
    }

    #[test]
    fn no_duplicates_emitted() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let g = unit(generate::erdos_renyi_gnm(12, 22, &mut rng));
        let mut seen: BTreeSet<Vec<u32>> = BTreeSet::new();
        enumerate_connected_k_subgraphs(&g, 4, |nodes| {
            let mut key: Vec<u32> = nodes.iter().map(|v| v.0).collect();
            key.sort_unstable();
            assert!(seen.insert(key), "duplicate subgraph emitted");
        });
        assert!(!seen.is_empty());
    }

    #[test]
    fn matches_naive_enumeration_on_random_graphs() {
        use waso_graph::traversal::is_connected_subset;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        for trial in 0..5 {
            let g = unit(generate::erdos_renyi_gnm(10, 14 + trial, &mut rng));
            let k = 4;
            // Naive: all C(10,4) subsets, keep the connected ones.
            let mut naive = 0u64;
            for a in 0..10u32 {
                for b in a + 1..10 {
                    for c in b + 1..10 {
                        for d in c + 1..10 {
                            let nodes = [NodeId(a), NodeId(b), NodeId(c), NodeId(d)];
                            if is_connected_subset(&g, &nodes) {
                                naive += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(count_connected_k_subgraphs(&g, k), naive, "trial {trial}");
        }
    }

    #[test]
    fn degenerate_k() {
        let g = unit(generate::path_topology(4));
        assert_eq!(count_connected_k_subgraphs(&g, 0), 0);
        assert_eq!(count_connected_k_subgraphs(&g, 5), 0);
        assert_eq!(count_connected_k_subgraphs(&g, 1), 4);
    }

    #[test]
    fn exhaustive_optimum_on_figure1() {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        let inst = WasoInstance::new(b.build(), 3).unwrap();
        let best = exhaustive_optimum(&inst).unwrap();
        assert_eq!(best.willingness(), 30.0);
        assert_eq!(best.nodes(), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn exhaustive_optimum_unconstrained_picks_best_subset() {
        // Disconnected graph: WASO-dis may take nodes from anywhere.
        let mut b = GraphBuilder::new();
        let a = b.add_node(5.0);
        let c = b.add_node(4.0);
        let d = b.add_node(3.0);
        let e = b.add_node(2.9);
        b.add_edge_symmetric(d, e, 10.0).unwrap();
        let _ = (a, c);
        let inst = WasoInstance::without_connectivity(b.build(), 2).unwrap();
        let best = exhaustive_optimum(&inst).unwrap();
        // {d, e}: 3 + 2.9 + 20 = 25.9 beats {a, c} = 9.
        assert_eq!(best.nodes(), &[NodeId(2), NodeId(3)]);
        assert!((best.willingness() - 25.9).abs() < 1e-12);
    }

    #[test]
    fn filtered_optimum_respects_the_predicate() {
        // Figure 1: unrestricted optimum is {v2,v3,v4}=30; forcing v1 in
        // (the "-i" user-study mode) the best is {v1,v2,v3}=27.
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        let inst = WasoInstance::new(b.build(), 3).unwrap();
        let pinned = exhaustive_optimum_where(&inst, |nodes| nodes.contains(&v1)).unwrap();
        assert_eq!(pinned.willingness(), 27.0);
        assert!(pinned.contains(v1));
        let free = exhaustive_optimum_where(&inst, |_| true).unwrap();
        assert_eq!(free.willingness(), 30.0);
        let none = exhaustive_optimum_where(&inst, |_| false);
        assert!(none.is_none());
    }

    #[test]
    fn exhaustive_optimum_infeasible_is_none() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        b.add_node(1.0);
        let inst = WasoInstance::new(b.build(), 2).unwrap();
        assert!(exhaustive_optimum(&inst).is_none());
    }
}

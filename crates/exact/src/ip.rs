//! The Appendix-B integer program.
//!
//! The paper's ground truth solves WASO as an IP with IBM CPLEX. We build
//! that exact model — objective `max Σ η_i x_i + Σ τ_{i,j} y_{i,j}`, the
//! basic constraints (11)–(12), and the path-based connectivity machinery
//! (13)–(19) with root variables `r_i`, path variables `p_{i,j,m,n}` and
//! depth variables `d_{i,j,m}` — so the formulation itself is inspectable,
//! testable and exportable in LP format. CPLEX is not redistributable;
//! [`IpModel::solve`] optimizes the same objective over the same feasible
//! set via [`crate::BranchBound`] (DESIGN.md §3 documents this
//! substitution; optimality is preserved, only the solving technology
//! differs).
//!
//! The connectivity block grows as `O(n² |E|)` variables — the reason the
//! paper could only run CPLEX on small extracts (Figure 9: n ≤ 500). Model
//! *construction* is therefore guarded by a size limit.

use std::fmt::Write as _;

use waso_core::WasoInstance;
use waso_graph::traversal;

use crate::branch_bound::{BranchBound, ExactResult};

/// Hard cap on `n` for materializing the connectivity constraints — above
/// this the `p_{i,j,m,n}` block is too large to be useful.
pub const MAX_MODEL_NODES: usize = 60;

/// Variable and constraint counts of the Appendix-B formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpSize {
    /// Node-selection binaries `x_i`.
    pub x_vars: usize,
    /// Edge-activation binaries `y_{i,j}` (one per undirected edge; both
    /// directed tightness scores share the activation).
    pub y_vars: usize,
    /// Root binaries `r_i`.
    pub r_vars: usize,
    /// Path binaries `p_{i,j,m,n}`: root i, destination j, directed slot
    /// (m,n).
    pub p_vars: usize,
    /// Depth variables `d_{i,j,m}` (continuous in `[0, n]`).
    pub d_vars: usize,
    /// Total constraint count across (11)–(19).
    pub constraints: usize,
}

impl IpSize {
    /// Total variable count.
    pub fn total_vars(&self) -> usize {
        self.x_vars + self.y_vars + self.r_vars + self.p_vars + self.d_vars
    }
}

/// The constructed Appendix-B model for one instance.
#[derive(Debug, Clone)]
pub struct IpModel<'a> {
    instance: &'a WasoInstance,
    size: IpSize,
}

impl<'a> IpModel<'a> {
    /// Builds the model (sizes the variable/constraint blocks).
    ///
    /// # Panics
    /// Panics when the instance requires connectivity and has more than
    /// [`MAX_MODEL_NODES`] nodes — the path formulation is quadratic-cubic
    /// and only intended for the paper's small IP experiments.
    pub fn build(instance: &'a WasoInstance) -> Self {
        let g = instance.graph();
        let n = g.num_nodes();
        let e = g.num_edges();
        let connected = instance.requires_connectivity();
        if connected {
            assert!(
                n <= MAX_MODEL_NODES,
                "connectivity IP for n={n} exceeds MAX_MODEL_NODES={MAX_MODEL_NODES}"
            );
        }

        // Basic block: (11) one cardinality constraint, (12) one per
        // undirected edge.
        let mut constraints = 1 + e;
        let (r_vars, p_vars, d_vars) = if connected {
            // (13) Σr = 1; (14) r_i ≤ x_i per node;
            // (15),(16) per ordered (i, j), i≠j; (17) per (i, j, m) triples
            // with m ∉ {i, j}; (18) per (i, j) × directed slot; (19) same.
            let ordered_pairs = n * (n - 1);
            constraints += 1 + n; // (13), (14)
            constraints += 2 * ordered_pairs; // (15), (16)
            constraints += ordered_pairs * (n - 2); // (17)
            constraints += 2 * ordered_pairs * (2 * e); // (18), (19)
            (
                n,
                ordered_pairs * 2 * e, // p_{i,j,m,n} per directed slot
                ordered_pairs * n,     // d_{i,j,m}
            )
        } else {
            (0, 0, 0)
        };

        Self {
            instance,
            size: IpSize {
                x_vars: n,
                y_vars: e,
                r_vars,
                p_vars,
                d_vars,
                constraints,
            },
        }
    }

    /// The model's size summary.
    pub fn size(&self) -> IpSize {
        self.size
    }

    /// The objective value of a selection vector under the IP objective
    /// `Σ η_i x_i + Σ (τ_{i,j} + τ_{j,i}) y_{i,j}` with `y` forced to its
    /// optimal value `x_i ∧ x_j` (τ ≥ 0; with negative τ the IP solver
    /// would set y = 0, the paper's formulation implicitly assumes
    /// non-negative tightness — we keep y = x_i ∧ x_j to stay faithful to
    /// Eq. (1), and document the difference here).
    pub fn objective(&self, x: &[bool]) -> f64 {
        let g = self.instance.graph();
        assert_eq!(x.len(), g.num_nodes(), "selection vector length mismatch");
        let mut total = 0.0;
        for v in g.node_ids() {
            if x[v.index()] {
                total += g.interest(v);
            }
        }
        for (u, v, tau_uv, tau_vu) in g.undirected_edges() {
            if x[u.index()] && x[v.index()] {
                total += tau_uv + tau_vu;
            }
        }
        total
    }

    /// Checks the basic constraints (11)–(12) plus connectivity (the net
    /// effect of (13)–(19)) for a candidate selection.
    pub fn is_feasible(&self, x: &[bool]) -> bool {
        let g = self.instance.graph();
        if x.len() != g.num_nodes() {
            return false;
        }
        let selected: Vec<waso_graph::NodeId> = g.node_ids().filter(|v| x[v.index()]).collect();
        if selected.len() != self.instance.k() {
            return false; // constraint (11)
        }
        if self.instance.requires_connectivity() {
            // Constraints (13)–(19) admit exactly the connected selections.
            traversal::is_connected_subset(g, &selected)
        } else {
            true
        }
    }

    /// Optimizes the model. Delegates to [`BranchBound`] — same objective,
    /// same feasible set, proven optimal unless `cap` triggers.
    pub fn solve(&self, cap: Option<u64>) -> Option<ExactResult> {
        let bb = match cap {
            Some(c) => BranchBound::with_cap(c),
            None => BranchBound::new(),
        };
        bb.solve(self.instance, None)
    }

    /// Serializes the basic block (objective + constraints (11)–(12) +
    /// binaries) in CPLEX LP format. The connectivity block is summarized
    /// as a comment — materializing `p_{i,j,m,n}` rows in text form is
    /// gigabytes even at n = 60, and no downstream consumer of ours parses
    /// them.
    pub fn to_lp_string(&self) -> String {
        let g = self.instance.graph();
        let mut out = String::new();
        out.push_str("\\ WASO integer program (Appendix B)\n");
        let _ = writeln!(
            out,
            "\\ n={} |E|={} k={} connected={}",
            g.num_nodes(),
            g.num_edges(),
            self.instance.k(),
            self.instance.requires_connectivity()
        );
        let _ = writeln!(
            out,
            "\\ full model: {} vars ({} path, {} depth), {} constraints",
            self.size.total_vars(),
            self.size.p_vars,
            self.size.d_vars,
            self.size.constraints
        );

        out.push_str("Maximize\n obj:");
        let mut first = true;
        for v in g.node_ids() {
            let eta = g.interest(v);
            if eta != 0.0 {
                let _ = write!(out, " {eta:+} x{}", v.0);
                first = false;
            }
        }
        for (u, v, tau_uv, tau_vu) in g.undirected_edges() {
            let w = tau_uv + tau_vu;
            if w != 0.0 {
                let _ = write!(out, " {:+} y{}_{}", w, u.0, v.0);
                first = false;
            }
        }
        if first {
            out.push_str(" 0 x0");
        }
        out.push('\n');

        out.push_str("Subject To\n");
        // (11): Σ x_i = k
        out.push_str(" c11:");
        for v in g.node_ids() {
            let _ = write!(out, " + x{}", v.0);
        }
        let _ = writeln!(out, " = {}", self.instance.k());
        // (12): x_i + x_j - 2 y_ij >= 0
        for (idx, (u, v, _, _)) in g.undirected_edges().enumerate() {
            let _ = writeln!(
                out,
                " c12_{idx}: x{} + x{} - 2 y{}_{} >= 0",
                u.0, v.0, u.0, v.0
            );
        }
        if self.instance.requires_connectivity() {
            out.push_str("\\ constraints (13)-(19): path-based connectivity (summarized)\n");
        }

        out.push_str("Binaries\n");
        for v in g.node_ids() {
            let _ = write!(out, " x{}", v.0);
        }
        out.push('\n');
        for (u, v, _, _) in g.undirected_edges() {
            let _ = write!(out, " y{}_{}", u.0, v.0);
        }
        out.push_str("\nEnd\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::exhaustive_optimum;
    use waso_graph::{GraphBuilder, NodeId};

    fn figure1_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        WasoInstance::new(b.build(), 3).unwrap()
    }

    #[test]
    fn sizes_match_hand_count() {
        let inst = figure1_instance();
        let model = IpModel::build(&inst);
        let s = model.size();
        // n=4, |E|=3: x=4, y=3, r=4; ordered pairs = 12, directed slots = 6.
        assert_eq!(s.x_vars, 4);
        assert_eq!(s.y_vars, 3);
        assert_eq!(s.r_vars, 4);
        assert_eq!(s.p_vars, 12 * 6);
        assert_eq!(s.d_vars, 12 * 4);
        // constraints: (11)=1, (12)=3, (13)=1, (14)=4, (15)+(16)=24,
        // (17)=12·2=24, (18)+(19)=2·12·6=144 → 201.
        assert_eq!(s.constraints, 201);
        assert_eq!(s.total_vars(), 4 + 3 + 4 + 72 + 48);
    }

    #[test]
    fn unconstrained_model_has_no_path_block() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(1.0);
        let v = b.add_node(2.0);
        b.add_edge_symmetric(u, v, 0.5).unwrap();
        let inst = WasoInstance::without_connectivity(b.build(), 1).unwrap();
        let s = IpModel::build(&inst).size();
        assert_eq!(s.r_vars + s.p_vars + s.d_vars, 0);
        assert_eq!(s.constraints, 2); // (11) + one (12)
    }

    #[test]
    fn objective_matches_willingness() {
        let inst = figure1_instance();
        let model = IpModel::build(&inst);
        // {v2, v3, v4} = indices 1..3.
        let x = [false, true, true, true];
        assert_eq!(model.objective(&x), 30.0);
        let greedy = [true, true, true, false];
        assert_eq!(model.objective(&greedy), 27.0);
    }

    #[test]
    fn feasibility_checks_cardinality_and_connectivity() {
        let inst = figure1_instance();
        let model = IpModel::build(&inst);
        assert!(model.is_feasible(&[false, true, true, true]));
        assert!(!model.is_feasible(&[true, true, false, false])); // size 2 ≠ 3
        assert!(!model.is_feasible(&[true, true, false, true])); // disconnected
        assert!(!model.is_feasible(&[true, true])); // wrong length
    }

    #[test]
    fn solve_delegates_to_exact_optimum() {
        let inst = figure1_instance();
        let model = IpModel::build(&inst);
        let res = model.solve(None).unwrap();
        assert!(res.optimal);
        assert_eq!(res.group.willingness(), 30.0);
        let brute = exhaustive_optimum(&inst).unwrap();
        assert_eq!(res.group.willingness(), brute.willingness());
    }

    #[test]
    fn lp_export_contains_the_model() {
        let inst = figure1_instance();
        let lp = IpModel::build(&inst).to_lp_string();
        assert!(lp.contains("Maximize"));
        assert!(lp.contains("c11:"));
        assert!(lp.contains("= 3"), "cardinality k=3:\n{lp}");
        // Symmetric edge v2–v3 with τ=2 contributes 2+2=4 on y1_2.
        assert!(lp.contains("+4 y1_2"), "{lp}");
        assert!(lp.contains("Binaries"));
        assert!(lp.ends_with("End\n"));
        // Every constraint (12) row present.
        assert!(lp.contains("c12_0:") && lp.contains("c12_2:"));
    }

    #[test]
    #[should_panic(expected = "MAX_MODEL_NODES")]
    fn oversized_connected_model_is_rejected() {
        let mut b = GraphBuilder::new();
        let first = b.add_node(0.0);
        let mut prev = first;
        for _ in 1..100 {
            let v = b.add_node(0.0);
            b.add_edge_symmetric(prev, v, 1.0).unwrap();
            prev = v;
        }
        let inst = WasoInstance::new(b.build(), 3).unwrap();
        let _ = IpModel::build(&inst);
    }

    #[test]
    fn feasible_objective_never_exceeds_solver_optimum() {
        let inst = figure1_instance();
        let model = IpModel::build(&inst);
        let opt = model.solve(None).unwrap().group.willingness();
        // All feasible x vectors (n=4, k=3): 4 candidates.
        for mask in 0u32..16 {
            let x: Vec<bool> = (0..4).map(|i| mask & (1 << i) != 0).collect();
            if model.is_feasible(&x) {
                assert!(model.objective(&x) <= opt + 1e-12);
            }
        }
        let _ = NodeId(0);
    }
}

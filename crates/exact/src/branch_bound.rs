//! Branch-and-bound exact WASO solving.
//!
//! Explores the same once-per-subgraph tree as [`crate::enumerate`] (ESU
//! ordering: a root plus larger-id extensions) but prunes with an
//! admissible bound: any node `v` joining the solution later adds at most
//!
//! ```text
//! gain_opt(v) = η̃_v + Σ_{u ∈ N(v)} max(τ̃_{v,u} + τ̃_{u,v}, 0)
//! ```
//!
//! so `UB(S) = W(S) + Σ top (k-|S|) gain_opt over eligible nodes` bounds
//! every completion. Eligible = id > root and not in `S` (connected mode)
//! or id > last chosen (unconstrained mode — combinations enumerate in
//! ascending order). An optional expansion cap turns the solver into an
//! anytime method for the paper's largest IP settings, reporting
//! `optimal = false` when it triggers.

use waso_core::{Group, WasoInstance};
use waso_graph::{BitSet, NodeId, SocialGraph};

/// Result of an exact (or capped) solve.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// The best group found.
    pub group: Group,
    /// `true` when the search space was exhausted (proven optimum).
    pub optimal: bool,
    /// Search-tree nodes expanded.
    pub nodes_explored: u64,
}

/// Branch-and-bound solver.
///
/// ```
/// use waso_core::WasoInstance;
/// use waso_exact::BranchBound;
/// use waso_graph::GraphBuilder;
///
/// // The Figure-1 graph: greedy gets trapped at 27, the optimum is 30.
/// let mut b = GraphBuilder::new();
/// let v1 = b.add_node(8.0);
/// let v2 = b.add_node(7.0);
/// let v3 = b.add_node(6.0);
/// let v4 = b.add_node(5.0);
/// b.add_edge_symmetric(v1, v2, 1.0).unwrap();
/// b.add_edge_symmetric(v2, v3, 2.0).unwrap();
/// b.add_edge_symmetric(v3, v4, 4.0).unwrap();
/// let instance = WasoInstance::new(b.build(), 3).unwrap();
///
/// let result = BranchBound::new().solve(&instance, None).unwrap();
/// assert!(result.optimal);
/// assert_eq!(result.group.willingness(), 30.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BranchBound {
    /// Stop after this many tree expansions (`None` = run to completion).
    pub max_nodes: Option<u64>,
}

/// Shared search state.
struct Search<'a> {
    g: &'a SocialGraph,
    k: usize,
    /// `gain_opt` per node.
    gains: Vec<f64>,
    /// Node ids sorted by `gain_opt` descending (bound computation).
    by_gain: Vec<u32>,
    members: BitSet,
    best_w: f64,
    best_nodes: Vec<NodeId>,
    explored: u64,
    cap: u64,
    capped: bool,
}

/// Floating-point slack: candidates must beat the incumbent by more than
/// this to be worth exploring. Guards against re-deriving the same optimum
/// through accumulated rounding noise, at a formally documented tolerance.
const EPS: f64 = 1e-9;

impl BranchBound {
    /// Solver without an expansion cap.
    pub fn new() -> Self {
        Self { max_nodes: None }
    }

    /// Solver that gives up optimality proofs after `cap` expansions.
    pub fn with_cap(cap: u64) -> Self {
        Self {
            max_nodes: Some(cap),
        }
    }

    /// Solves to optimality (or the cap). `incumbent` primes the lower
    /// bound — passing a good heuristic solution (e.g. CBAS-ND's) lets the
    /// search prune from the start; correctness does not depend on it.
    /// Returns `None` when no feasible group exists.
    pub fn solve(&self, instance: &WasoInstance, incumbent: Option<&Group>) -> Option<ExactResult> {
        let g = instance.graph();
        let n = g.num_nodes();
        let k = instance.k();

        let gains: Vec<f64> = g
            .node_ids()
            .map(|v| {
                let pos: f64 = g.neighbor_entries(v).map(|(_, _, pw)| pw.max(0.0)).sum();
                g.interest(v) + pos
            })
            .collect();
        let mut by_gain: Vec<u32> = (0..n as u32).collect();
        by_gain.sort_by(|&a, &b| {
            gains[b as usize]
                .partial_cmp(&gains[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });

        let mut search = Search {
            g,
            k,
            gains,
            by_gain,
            members: BitSet::new(n),
            best_w: f64::NEG_INFINITY,
            best_nodes: Vec::new(),
            explored: 0,
            cap: self.max_nodes.unwrap_or(u64::MAX),
            capped: false,
        };
        if let Some(inc) = incumbent {
            search.best_w = inc.willingness();
            search.best_nodes = inc.nodes().to_vec();
        }

        if instance.requires_connectivity() {
            search.run_connected();
        } else {
            search.run_unconstrained();
        }

        if search.best_nodes.is_empty() {
            return None;
        }
        let group = Group::new_unchecked(instance, search.best_nodes.clone());
        Some(ExactResult {
            group,
            optimal: !search.capped,
            nodes_explored: search.explored,
        })
    }
}

impl Search<'_> {
    /// Upper bound on any completion: current willingness plus the largest
    /// `rem` optimistic gains among nodes with `id >= min_id` outside `S`.
    fn bound(&self, current_w: f64, rem: usize, min_id: u32) -> f64 {
        let mut ub = current_w;
        let mut taken = 0;
        for &v in &self.by_gain {
            if taken == rem {
                break;
            }
            if v < min_id || self.members.contains(v as usize) {
                continue;
            }
            let gain = self.gains[v as usize];
            if gain <= 0.0 {
                // Sorted descending: only non-positive gains remain. They
                // can only lower the bound's usefulness; still count them to
                // stay an upper bound on *mandatory* size-k completion.
                ub += gain * (rem - taken) as f64;
                taken = rem;
                break;
            }
            ub += gain;
            taken += 1;
        }
        if taken < rem {
            // Not enough eligible nodes: completion impossible from here.
            return f64::NEG_INFINITY;
        }
        ub
    }

    fn consider(&mut self, sub: &[NodeId], w: f64) {
        if w > self.best_w {
            self.best_w = w;
            self.best_nodes = sub.to_vec();
        }
    }

    fn run_connected(&mut self) {
        let n = self.g.num_nodes();
        let mut sub: Vec<NodeId> = Vec::with_capacity(self.k);
        let mut nbhd = BitSet::new(n);

        for root in 0..n as u32 {
            if self.capped {
                return;
            }
            let root_id = NodeId(root);
            sub.push(root_id);
            self.members.insert(root as usize);
            nbhd.insert(root as usize);
            let mut touched = vec![root];
            let mut ext: Vec<u32> = Vec::new();
            for &u in self.g.neighbors(root_id) {
                if nbhd.insert(u as usize) {
                    touched.push(u);
                }
                if u > root {
                    ext.push(u);
                }
            }
            let w0 = self.g.interest(root_id);
            if self.k == 1 {
                let snapshot = sub.clone();
                self.consider(&snapshot, w0);
            } else {
                self.extend_connected(root, &mut sub, ext, &mut nbhd, w0);
            }
            for &u in &touched {
                nbhd.remove(u as usize);
            }
            self.members.remove(root as usize);
            sub.pop();
        }
    }

    fn extend_connected(
        &mut self,
        root: u32,
        sub: &mut Vec<NodeId>,
        mut ext: Vec<u32>,
        nbhd: &mut BitSet,
        w: f64,
    ) {
        self.explored += 1;
        if self.explored >= self.cap {
            self.capped = true;
            return;
        }
        let rem = self.k - sub.len();
        if self.bound(w, rem, root + 1) <= self.best_w + EPS {
            return;
        }
        // Branch on high-gain candidates first: better incumbents earlier,
        // more pruning later.
        ext.sort_by(|&a, &b| {
            self.gains[a as usize]
                .partial_cmp(&self.gains[b as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.cmp(&a))
        });
        while let Some(cand) = ext.pop() {
            if self.capped {
                return;
            }
            let cand_id = NodeId(cand);
            // Incremental willingness via pair weights.
            let dw = waso_core::marginal_gain(self.g, &self.members, cand_id);
            sub.push(cand_id);
            self.members.insert(cand as usize);

            if sub.len() == self.k {
                let snapshot = sub.clone();
                self.consider(&snapshot, w + dw);
            } else {
                let mut touched: Vec<u32> = Vec::new();
                let mut next_ext = ext.clone();
                for &u in self.g.neighbors(cand_id) {
                    if nbhd.insert(u as usize) {
                        touched.push(u);
                        if u > root {
                            next_ext.push(u);
                        }
                    }
                }
                self.extend_connected(root, sub, next_ext, nbhd, w + dw);
                for &u in &touched {
                    nbhd.remove(u as usize);
                }
            }
            self.members.remove(cand as usize);
            sub.pop();
        }
    }

    fn run_unconstrained(&mut self) {
        let mut sub: Vec<NodeId> = Vec::with_capacity(self.k);
        self.extend_unconstrained(&mut sub, 0, 0.0);
    }

    fn extend_unconstrained(&mut self, sub: &mut Vec<NodeId>, next_id: u32, w: f64) {
        self.explored += 1;
        if self.explored >= self.cap {
            self.capped = true;
            return;
        }
        if sub.len() == self.k {
            let snapshot = sub.clone();
            self.consider(&snapshot, w);
            return;
        }
        let rem = self.k - sub.len();
        // Eligible: ids ≥ next_id (ascending combinations).
        if self.bound(w, rem, next_id) <= self.best_w + EPS {
            return;
        }
        let n = self.g.num_nodes() as u32;
        // Must leave room for the remaining picks.
        let last_start = n - rem as u32;
        for v in next_id..=last_start {
            if self.capped {
                return;
            }
            let v_id = NodeId(v);
            let dw = waso_core::marginal_gain(self.g, &self.members, v_id);
            sub.push(v_id);
            self.members.insert(v as usize);
            self.extend_unconstrained(sub, v + 1, w + dw);
            self.members.remove(v as usize);
            sub.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::exhaustive_optimum;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waso_graph::{generate, GraphBuilder, InterestModel, ScoreModel, TightnessModel};

    fn figure1_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        WasoInstance::new(b.build(), 3).unwrap()
    }

    #[test]
    fn solves_figure1_optimally() {
        let res = BranchBound::new().solve(&figure1_instance(), None).unwrap();
        assert!(res.optimal);
        assert_eq!(res.group.willingness(), 30.0);
        assert_eq!(res.group.nodes(), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn incumbent_only_prunes_never_changes_answer() {
        let inst = figure1_instance();
        let greedy27 = Group::new(&inst, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let with = BranchBound::new().solve(&inst, Some(&greedy27)).unwrap();
        let without = BranchBound::new().solve(&inst, None).unwrap();
        assert_eq!(with.group.willingness(), without.group.willingness());
        assert!(with.nodes_explored <= without.nodes_explored);
    }

    #[test]
    fn cap_reports_non_optimal() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = generate::erdos_renyi_gnm(20, 60, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        let inst = WasoInstance::new(g, 6).unwrap();
        let res = BranchBound::with_cap(10).solve(&inst, None);
        if let Some(res) = res {
            assert!(!res.optimal);
        }
        // With no cap, the answer is optimal.
        let full = BranchBound::new().solve(&inst, None).unwrap();
        assert!(full.optimal);
    }

    #[test]
    fn matches_exhaustive_on_random_connected_instances() {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = generate::erdos_renyi_gnm(12, 20, &mut rng);
            let g = ScoreModel::paper_default().realize(&topo, &mut rng);
            let inst = WasoInstance::new(g, 4).unwrap();
            let bb = BranchBound::new().solve(&inst, None);
            let brute = exhaustive_optimum(&inst);
            match (bb, brute) {
                (Some(a), Some(b)) => {
                    assert!(
                        (a.group.willingness() - b.willingness()).abs() < 1e-9,
                        "seed {seed}: bb {} vs brute {}",
                        a.group.willingness(),
                        b.willingness()
                    );
                }
                (None, None) => {}
                other => panic!("seed {seed}: feasibility mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn matches_exhaustive_on_unconstrained_instances() {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let topo = generate::erdos_renyi_gnm(11, 14, &mut rng);
            let g = ScoreModel::paper_default().realize(&topo, &mut rng);
            let inst = WasoInstance::without_connectivity(g, 4).unwrap();
            let bb = BranchBound::new().solve(&inst, None).unwrap();
            let brute = exhaustive_optimum(&inst).unwrap();
            assert!(
                (bb.group.willingness() - brute.willingness()).abs() < 1e-9,
                "seed {seed}"
            );
            assert!(bb.optimal);
        }
    }

    #[test]
    fn negative_scores_are_handled() {
        // Foe edge inside an otherwise attractive triangle.
        let mut b = GraphBuilder::new();
        let x = b.add_node(5.0);
        let y = b.add_node(5.0);
        let z = b.add_node(5.0);
        let w = b.add_node(0.5);
        b.add_edge_symmetric(x, y, -50.0).unwrap();
        b.add_edge_symmetric(y, z, 1.0).unwrap();
        b.add_edge_symmetric(x, z, 1.0).unwrap();
        b.add_edge_symmetric(z, w, 0.1).unwrap();
        let inst = WasoInstance::new(b.build(), 2).unwrap();
        let res = BranchBound::new().solve(&inst, None).unwrap();
        // Best pair avoids the foe edge: {x,z} or {y,z} = 5+5+2 = 12.
        assert!((res.group.willingness() - 12.0).abs() < 1e-12);
        assert!(!(res.group.contains(x) && res.group.contains(y)));
    }

    #[test]
    fn infeasible_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        b.add_node(1.0);
        let inst = WasoInstance::new(b.build(), 2).unwrap();
        assert!(BranchBound::new().solve(&inst, None).is_none());
    }

    #[test]
    fn k_equals_one_picks_max_interest() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        b.add_node(9.0);
        b.add_node(4.0);
        let inst = WasoInstance::new(b.build(), 1).unwrap();
        let res = BranchBound::new().solve(&inst, None).unwrap();
        assert_eq!(res.group.nodes(), &[NodeId(1)]);
        assert_eq!(res.group.willingness(), 9.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn agrees_with_brute_force(seed in 0u64..500, k in 2usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = generate::erdos_renyi_gnm(9, 12, &mut rng);
            let model = ScoreModel {
                interest: InterestModel::Uniform { lo: -1.0, hi: 2.0 },
                tightness: TightnessModel::Uniform { lo: -0.5, hi: 1.0 },
            };
            let g = model.realize(&topo, &mut rng);
            let inst = WasoInstance::new(g, k).unwrap();
            let bb = BranchBound::new().solve(&inst, None);
            let brute = exhaustive_optimum(&inst);
            match (bb, brute) {
                (Some(a), Some(b)) => prop_assert!(
                    (a.group.willingness() - b.willingness()).abs() < 1e-9
                ),
                (None, None) => {}
                other => prop_assert!(false, "feasibility mismatch: {:?}", other),
            }
        }
    }
}

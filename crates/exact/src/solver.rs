//! [`ExactSolver`] — the branch-and-bound behind the uniform [`Solver`]
//! interface, and its [`SolverRegistry`] registration.
//!
//! The paper's evaluation treats the IP/CPLEX optimum as just another
//! column next to the heuristics; this adapter makes that literal: the
//! CLI, the figure drivers, and `WasoSession` obtain the exact solver
//! through the same `SolverSpec` → registry path as everything else
//! (`exact`, or `exact:cap=1000000` for the anytime mode). The seed is
//! ignored — exact solving is deterministic — and a warm-start incumbent
//! ([`Solver::warm_start`]) primes the lower bound exactly like the
//! paper's practice of seeding CPLEX with the heuristic solution.

use waso_algos::{
    Capabilities, RegistryEntry, SolveError, SolveResult, Solver, SolverRegistry, SolverSpec,
    SolverStats, SpecError,
};
use waso_core::{Group, WasoInstance};

use crate::branch_bound::BranchBound;

/// Default expansion cap when a spec sets none: large enough to prove
/// optimality on every workload the harness ships, small enough to stay
/// anytime on adversarial inputs (the Figure 9 "capped" caveat).
pub const DEFAULT_CAP: u64 = 200_000_000;

/// Branch-and-bound exact solving as a [`Solver`].
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    bb: BranchBound,
    incumbent: Option<Group>,
    /// Whether the last `solve_seeded` call proved optimality (`None`
    /// before the first call). Exposed because the uniform interface has
    /// no channel for optimality certificates.
    last_optimal: Option<bool>,
}

impl ExactSolver {
    /// An uncapped exact solver.
    pub fn new() -> Self {
        Self::from_branch_bound(BranchBound::new())
    }

    /// Wraps a configured [`BranchBound`].
    pub fn from_branch_bound(bb: BranchBound) -> Self {
        Self {
            bb,
            incumbent: None,
            last_optimal: None,
        }
    }

    /// The exact-solver settings a [`SolverSpec`] carries (`cap=N`).
    pub fn from_spec(spec: &SolverSpec) -> Result<Self, SpecError> {
        spec.ensure_only("exact", &["cap"])?;
        Ok(Self::from_branch_bound(BranchBound::with_cap(
            spec.cap.unwrap_or(DEFAULT_CAP),
        )))
    }

    /// Whether the last solve proved optimality (`None` before any solve).
    /// `Some(false)` means the expansion cap was hit and the result is the
    /// best *found*, the same caveat the paper's 10⁵-second CPLEX runs
    /// carry.
    pub fn last_was_optimal(&self) -> Option<bool> {
        self.last_optimal
    }
}

impl Solver for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: true,
            warm_start: true,
            ..Capabilities::default()
        }
    }

    fn warm_start(&mut self, incumbent: &Group) {
        self.incumbent = Some(incumbent.clone());
    }

    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        _seed: u64,
    ) -> Result<SolveResult, SolveError> {
        let t0 = std::time::Instant::now();
        let res = self
            .bb
            .solve(instance, self.incumbent.as_ref())
            .ok_or(SolveError::NoFeasibleGroup)?;
        self.last_optimal = Some(res.optimal);
        Ok(SolveResult {
            group: res.group,
            stats: SolverStats {
                // Tree expansions are the exact analogue of samples drawn:
                // the unit of work the budget caps.
                samples_drawn: res.nodes_explored,
                stages: 1,
                start_nodes: instance.graph().num_nodes() as u32,
                // Cap hit: best-found, not a proven optimum — the uniform
                // interface's channel for the Figure-9 "capped" caveat.
                truncated: !res.optimal,
                elapsed: t0.elapsed(),
                ..SolverStats::default()
            },
        })
    }
}

/// Appends the `exact` entry to a registry (typically
/// [`SolverRegistry::builtin`]); `waso::registry()` calls this for you.
pub fn register_exact(registry: &mut SolverRegistry) {
    registry.register(RegistryEntry {
        name: "exact",
        aliases: &["bb", "ip"],
        label: "IP",
        summary: "exact branch-and-bound, the paper's CPLEX ground-truth role",
        capabilities: Capabilities {
            exact: true,
            warm_start: true,
            ..Capabilities::default()
        },
        roster_rank: None,
        costly: true,
        options: &["cap"],
        build: |spec| Ok(Box::new(ExactSolver::from_spec(spec)?)),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    fn figure1_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        WasoInstance::new(b.build(), 3).unwrap()
    }

    fn full_registry() -> SolverRegistry {
        let mut r = SolverRegistry::builtin();
        register_exact(&mut r);
        r
    }

    #[test]
    fn solves_through_the_uniform_interface() {
        let mut s = ExactSolver::new();
        let res = s.solve_seeded(&figure1_instance(), 123).unwrap();
        assert_eq!(res.group.willingness(), 30.0);
        assert_eq!(s.last_was_optimal(), Some(true));
        assert!(res.stats.samples_drawn > 0);
    }

    #[test]
    fn seed_is_irrelevant() {
        let inst = figure1_instance();
        let a = ExactSolver::new().solve_seeded(&inst, 0).unwrap();
        let b = ExactSolver::new().solve_seeded(&inst, u64::MAX).unwrap();
        assert_eq!(a.group, b.group);
    }

    #[test]
    fn buildable_from_a_parsed_spec_string() {
        let registry = full_registry();
        let spec = registry.parse("exact:cap=1000000").unwrap();
        let res = registry
            .build(&spec)
            .unwrap()
            .solve_seeded(&figure1_instance(), 0)
            .unwrap();
        assert_eq!(res.group.willingness(), 30.0);
        // Aliases resolve too.
        assert_eq!(registry.parse("ip").unwrap().algorithm(), "exact");
    }

    #[test]
    fn warm_start_primes_without_changing_the_answer() {
        let inst = figure1_instance();
        let incumbent = ExactSolver::new().solve_seeded(&inst, 0).unwrap().group;
        let mut primed = ExactSolver::new();
        primed.warm_start(&incumbent);
        let res = primed.solve_seeded(&inst, 0).unwrap();
        assert_eq!(res.group.willingness(), 30.0);
        assert!(primed.last_was_optimal().unwrap());
    }

    #[test]
    fn rejects_sampling_options() {
        let err = ExactSolver::from_spec(&SolverSpec::exact().budget(100))
            .err()
            .unwrap();
        assert_eq!(
            err,
            SpecError::UnsupportedOption {
                algorithm: "exact",
                key: "budget"
            }
        );
    }

    #[test]
    fn required_attendees_are_rejected_loudly() {
        let mut s = ExactSolver::new();
        let err = s
            .solve_with_required(&figure1_instance(), &[waso_graph::NodeId(0)], 0)
            .unwrap_err();
        assert_eq!(err, SolveError::RequiredUnsupported { solver: "exact" });
    }
}

//! # waso-exact
//!
//! Exact WASO solving — the reproduction's substitute for the paper's
//! "IP solved by IBM CPLEX" ground truth (§5, Appendix B).
//!
//! * [`enumerate`] — Wernicke's ESU enumeration of all connected induced
//!   `k`-subgraphs, each exactly once: the brute-force oracle used to
//!   verify everything else on small graphs;
//! * [`branch_bound`] — a branch-and-bound maximizer over the same search
//!   tree with an admissible optimistic-gain bound, handling both the
//!   connected (WASO) and unconstrained (WASO-dis) problems, with an
//!   optional node-expansion cap for the largest settings;
//! * [`ip`] — the Appendix-B integer program, constructed variable-by-
//!   variable and exportable in LP format. We do not ship a general MILP
//!   solver; [`ip::IpModel::solve`] delegates to the branch-and-bound,
//!   which optimizes the identical objective over the identical feasible
//!   set (see DESIGN.md §3 for the substitution argument);
//! * [`solver`] — [`ExactSolver`], the branch-and-bound behind the
//!   uniform `waso_algos::Solver` interface, registered in the
//!   `SolverRegistry` as `exact` (aliases `bb`, `ip`) so the CLI and the
//!   figure drivers build it from the same spec strings as the
//!   heuristics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod branch_bound;
pub mod enumerate;
pub mod ip;
pub mod solver;

pub use branch_bound::{BranchBound, ExactResult};
pub use enumerate::{
    enumerate_connected_k_subgraphs, exhaustive_optimum, exhaustive_optimum_where,
};
pub use ip::IpModel;
pub use solver::{register_exact, ExactSolver};

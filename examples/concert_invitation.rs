//! The §2.2 "Invitation" scenario: a piano player plans a small home
//! concert and invites people from their own friend circle. Candidates are
//! the inviter's neighbours; guests are weighted by interest only (λ = 1),
//! while the inviter's closeness to each guest still counts (λ = 0 for the
//! inviter).
//!
//! The host *must* attend — expressed as a session-level required
//! attendee, which the facade enforces uniformly (solvers that cannot
//! guarantee it reject the job instead of ignoring it).
//!
//! ```text
//! cargo run --release --example concert_invitation
//! ```

use waso::core::scenario;
use waso::prelude::*;
use waso_datasets::synthetic;

fn main() {
    // A synthetic Facebook-like friendship network stands in for the
    // pianist's real social graph.
    let graph = synthetic::facebook_like_n(600, 2024);

    // The pianist: pick a reasonably social person.
    let pianist = graph
        .node_ids()
        .max_by_key(|&v| graph.degree(v))
        .expect("non-empty graph");
    println!(
        "Pianist {pianist} has {} friends; hosting a concert for 6 guests.\n",
        graph.degree(pianist)
    );

    // Scenario transformation: restrict to the pianist's neighbourhood and
    // fold in the invitation λ weights. The pianist is node 0 afterwards.
    let k = 7; // pianist + 6 guests
    let (instance, ego) = scenario::invitation(&graph, pianist, k).expect("valid scenario");
    println!(
        "Candidate pool: {} people (the pianist's closed neighbourhood).",
        instance.graph().num_nodes()
    );

    // The session requires the host; CBAS-ND guarantees the constraint.
    let session = WasoSession::new(instance.graph().clone())
        .k(k)
        .require([NodeId(0)])
        .seed(7);
    let result = session
        .solve(&SolverSpec::cbas_nd().budget(200).stages(4))
        .expect("feasible concert");

    // A solver that cannot guarantee the host's seat is rejected loudly —
    // the constraint is never silently dropped.
    let err = session.solve_str("cbas").unwrap_err();
    println!("\n(cbas was rejected as expected: {err})");

    println!("\nRecommended concert party (ids in the full network):");
    for &v in result.group.nodes() {
        let original = ego.parent_id(v);
        let role = if v == NodeId(0) { "host " } else { "guest" };
        println!(
            "  {role} {original}  (interest {:.2}, closeness to host {:.2})",
            graph.interest(original),
            graph.tightness(pianist, original).unwrap_or(0.0)
        );
    }
    println!(
        "\nParty willingness under invitation weighting: {:.3}",
        result.group.willingness()
    );
    assert!(result.group.contains(NodeId(0)), "the host attends");
}

//! Quickstart: build a small social graph, solve WASO with every
//! registered solver through one `WasoSession`, and compare against the
//! exact optimum.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use waso::prelude::*;

fn main() {
    // A weekend hike for k = 4 people out of a 12-person friend circle.
    // Interest scores say how much each person likes hiking; tightness says
    // how close each pair of friends is (symmetric here for readability).
    let mut b = GraphBuilder::new();
    let names = [
        "ana", "bo", "cam", "dee", "eli", "fay", "gus", "hal", "ivy", "jo", "kim", "lou",
    ];
    let interest = [0.9, 0.3, 0.8, 0.2, 0.7, 0.6, 0.1, 0.5, 0.9, 0.4, 0.3, 0.6];
    let people: Vec<NodeId> = interest.iter().map(|&eta| b.add_node(eta)).collect();

    let friendships: [(usize, usize, f64); 16] = [
        (0, 1, 0.6),
        (0, 2, 0.9),
        (1, 2, 0.5),
        (2, 3, 0.4),
        (2, 4, 0.8),
        (3, 4, 0.3),
        (4, 5, 0.7),
        (5, 6, 0.2),
        (5, 8, 0.9),
        (6, 7, 0.4),
        (7, 8, 0.6),
        (8, 9, 0.5),
        (8, 11, 0.8),
        (9, 10, 0.3),
        (10, 11, 0.4),
        (0, 11, 0.2),
    ];
    for (u, v, tau) in friendships {
        b.add_edge_symmetric(people[u], people[v], tau).unwrap();
    }

    // One session: the graph, the group size, the seed policy. Every
    // solver below runs through it — specs are the only thing that vary.
    let session = WasoSession::new(b.build()).k(4).seed(42);

    println!("WASO quickstart: pick the best-connected group of 4 hikers\n");

    // The deterministic greedy baseline.
    let greedy = session.solve_str("dgreedy").expect("feasible");
    print_group("DGreedy ", &greedy.group, &names);

    // The paper's flagship, CBAS-ND, from a builder-style spec.
    let nd = session
        .solve(&SolverSpec::cbas_nd().budget(200).stages(4))
        .expect("feasible");
    print_group("CBAS-ND ", &nd.group, &names);
    println!("          ({})", nd.stats);

    // Ground truth on a graph this small — same session, same interface.
    let exact = session.solve_str("exact").expect("feasible");
    print_group("Optimum ", &exact.group, &names);

    assert!(nd.group.willingness() <= exact.group.willingness() + 1e-9);
    let ratio = nd.group.willingness() / exact.group.willingness();
    println!("\nCBAS-ND reached {:.1}% of the optimum.", 100.0 * ratio);

    // The registry knows every solver; run the full roster for fun.
    println!("\nThe whole registered family on the same instance:");
    for entry in session.registry().entries() {
        let spec = match entry.name {
            "dgreedy" => SolverSpec::dgreedy(),
            "rgreedy" => SolverSpec::rgreedy().budget(200),
            "exact" => SolverSpec::exact(),
            name => SolverSpec::new(name).budget(200).stages(4),
        };
        let res = session.solve(&spec).expect("feasible");
        println!(
            "  {:12} willingness {:.2}",
            entry.label,
            res.group.willingness()
        );
    }
}

fn print_group(label: &str, group: &Group, names: &[&str]) {
    let members: Vec<&str> = group.nodes().iter().map(|v| names[v.index()]).collect();
    println!(
        "{label} -> {{{}}}  willingness {:.2}",
        members.join(", "),
        group.willingness()
    );
}

//! Quickstart: build a small social graph, solve WASO with every solver,
//! and compare against the exact optimum.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use waso::prelude::*;
use waso_exact::BranchBound;

fn main() {
    // A weekend hike for k = 4 people out of a 12-person friend circle.
    // Interest scores say how much each person likes hiking; tightness says
    // how close each pair of friends is (symmetric here for readability).
    let mut b = GraphBuilder::new();
    let names = [
        "ana", "bo", "cam", "dee", "eli", "fay", "gus", "hal", "ivy", "jo", "kim", "lou",
    ];
    let interest = [0.9, 0.3, 0.8, 0.2, 0.7, 0.6, 0.1, 0.5, 0.9, 0.4, 0.3, 0.6];
    let people: Vec<NodeId> = interest.iter().map(|&eta| b.add_node(eta)).collect();

    let friendships: [(usize, usize, f64); 16] = [
        (0, 1, 0.6),
        (0, 2, 0.9),
        (1, 2, 0.5),
        (2, 3, 0.4),
        (2, 4, 0.8),
        (3, 4, 0.3),
        (4, 5, 0.7),
        (5, 6, 0.2),
        (5, 8, 0.9),
        (6, 7, 0.4),
        (7, 8, 0.6),
        (8, 9, 0.5),
        (8, 11, 0.8),
        (9, 10, 0.3),
        (10, 11, 0.4),
        (0, 11, 0.2),
    ];
    for (u, v, tau) in friendships {
        b.add_edge_symmetric(people[u], people[v], tau).unwrap();
    }
    let graph = b.build();

    let instance = WasoInstance::new(graph, 4).expect("valid instance");

    println!("WASO quickstart: pick the best-connected group of 4 hikers\n");

    // The deterministic greedy baseline.
    let greedy = DGreedy::new().solve_seeded(&instance, 0).unwrap();
    print_group("DGreedy ", &greedy.group, &names);

    // The paper's flagship: CBAS-ND.
    let mut solver = CbasNd::new(CbasNdConfig::fast());
    let nd = solver.solve_seeded(&instance, 42).unwrap();
    print_group("CBAS-ND ", &nd.group, &names);
    println!(
        "          ({} samples across {} stages, {} start nodes)",
        nd.stats.samples_drawn, nd.stats.stages, nd.stats.start_nodes
    );

    // Ground truth on a graph this small.
    let exact = BranchBound::new().solve(&instance, None).unwrap();
    print_group("Optimum ", &exact.group, &names);

    assert!(nd.group.willingness() <= exact.group.willingness() + 1e-9);
    let ratio = nd.group.willingness() / exact.group.willingness();
    println!("\nCBAS-ND reached {:.1}% of the optimum.", 100.0 * ratio);
}

fn print_group(label: &str, group: &Group, names: &[&str]) {
    let members: Vec<&str> = group.nodes().iter().map(|v| names[v.index()]).collect();
    println!(
        "{label} -> {{{}}}  willingness {:.2}",
        members.join(", "),
        group.willingness()
    );
}

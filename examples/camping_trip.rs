//! The §2.2 "Separate Groups" scenario (WASO-dis): a government camping
//! trip where attendees need not know each other — the connectivity
//! constraint is dropped. Demonstrates both of the paper's routes:
//!
//! 1. the Theorem-2 virtual-node reduction (solve WASO with k+1 on an
//!    augmented graph, then strip the virtual node), and
//! 2. the native unconstrained mode (`WasoSession::disconnected`,
//!    footnote 3's "simple modification").
//!
//! On a graph this small the exact solver verifies both give the same
//! optimum.
//!
//! ```text
//! cargo run --release --example camping_trip
//! ```

use waso::core::scenario;
use waso::prelude::*;

fn main() {
    // Two separate friend groups, no edges between them: a connected
    // k = 4 group cannot mix them, but the camping trip may.
    let mut b = GraphBuilder::new();
    let interests = [0.9, 0.8, 0.1, 0.2, 0.85, 0.7, 0.15, 0.1];
    let people: Vec<NodeId> = interests.iter().map(|&x| b.add_node(x)).collect();
    // Group A: 0-1-2-3 path; Group B: 4-5-6-7 path.
    for w in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)] {
        b.add_edge_symmetric(people[w.0], people[w.1], 0.5).unwrap();
    }
    let graph = b.build();
    let k = 4;

    // Route 1: Theorem-2 virtual node. The reduction produces its own
    // augmented instance, solved through a session over that graph.
    let reduction = scenario::separate_groups(&graph, k, 1.0).expect("valid scenario");
    println!(
        "Virtual-node reduction: augmented graph has {} nodes, asks for k+1 = {}.",
        reduction.instance.graph().num_nodes(),
        reduction.instance.k()
    );
    let exact_aug = WasoSession::new(reduction.instance.graph().clone())
        .k(reduction.instance.k())
        .solve_str("exact")
        .expect("feasible");
    let via_reduction = reduction.strip(exact_aug.group.nodes());
    let w_reduction = waso::core::willingness(&graph, &via_reduction);
    println!(
        "  optimal campers via reduction: {:?}, willingness {:.2}",
        via_reduction, w_reduction
    );

    // Route 2: native unconstrained session.
    let free = WasoSession::new(graph.clone()).k(k).disconnected();
    let exact_native = free.solve_str("exact").expect("feasible");
    println!(
        "  optimal campers natively:      {:?}, willingness {:.2}",
        exact_native.group.nodes(),
        exact_native.group.willingness()
    );

    // Theorem 2: both routes agree.
    assert!((w_reduction - exact_native.group.willingness()).abs() < 1e-9);

    // The best four campers mix both friend groups — which a connected
    // WASO group cannot.
    let connected = WasoSession::new(graph.clone()).k(k);
    let exact_connected = connected.solve_str("exact").expect("feasible");
    println!(
        "\nBest *connected* group: {:?}, willingness {:.2}",
        exact_connected.group.nodes(),
        exact_connected.group.willingness()
    );
    assert!(exact_native.group.willingness() >= exact_connected.group.willingness());
    println!(
        "Dropping connectivity gains {:+.2} willingness.",
        exact_native.group.willingness() - exact_connected.group.willingness()
    );

    // CBAS-ND handles the unconstrained mode through the same session.
    let nd = free
        .solve(&SolverSpec::cbas_nd().budget(200).stages(4))
        .expect("feasible");
    println!(
        "CBAS-ND (native WASO-dis) finds willingness {:.2}.",
        nd.group.willingness()
    );
}

//! The §2.2 "Exhibition" scenario: a museum mails invitations for a Van
//! Gogh show. Only topic interest matters (λ_i = 1 for everyone), and the
//! audience does not need to be mutually acquainted — but the museum still
//! wants a socially connected cluster so word of mouth spreads, so we run
//! both the connectivity-constrained and unconstrained variants and
//! compare. Both variants are one-line session changes.
//!
//! ```text
//! cargo run --release --example exhibition_outreach
//! ```

use waso::core::scenario;
use waso::prelude::*;
use waso_datasets::synthetic;

fn main() {
    let graph = synthetic::facebook_like_n(1500, 5);
    let k = 12;
    let nd_spec = SolverSpec::cbas_nd().budget(200).stages(4);

    // λ = 1 for everyone: pure-interest objective, connectivity required.
    let connected = scenario::exhibition(&graph, k).expect("valid scenario");
    let social = WasoSession::new(connected.graph().clone()).k(k).seed(5);
    let social_cluster = social.solve(&nd_spec).expect("feasible");

    // Unconstrained variant: just the k most interested people anywhere.
    let free = WasoSession::new(connected.graph().clone())
        .k(k)
        .disconnected();
    let top_individuals = free.solve_str("dgreedy").expect("feasible");

    println!("Exhibition outreach for k = {k} invitations (interest-only scores)\n");
    println!(
        "Connected cluster (word-of-mouth friendly): willingness {:.3}",
        social_cluster.group.willingness()
    );
    println!(
        "Top individuals anywhere (upper bound):     willingness {:.3}",
        top_individuals.group.willingness()
    );

    // With λ = 1 the unconstrained optimum is exactly the k largest
    // interests — the connected cluster pays a "connectivity price".
    let mut interests: Vec<f64> = connected.graph().interests().to_vec();
    interests.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let ideal: f64 = interests[..k].iter().sum();
    assert!((top_individuals.group.willingness() - ideal).abs() < 1e-9);

    let price = ideal - social_cluster.group.willingness();
    println!(
        "\nConnectivity price: {price:.3} ({:.1}% of the ideal)",
        100.0 * price / ideal
    );

    // House-warming contrast: with λ = 0 only tightness counts, and the
    // recommendation flips from interest hubs to a close-knit clique.
    let cozy = scenario::house_warming(&graph, 6).expect("valid scenario");
    let party = WasoSession::new(cozy.graph().clone())
        .k(6)
        .seed(6)
        .solve(&nd_spec)
        .expect("feasible");
    println!(
        "\nHouse-warming contrast (λ = 0, tightness only, k = 6): willingness {:.3}",
        party.group.willingness()
    );
}

//! The §4.4.1 online extension: invitations go out, some people decline,
//! and the plan is repaired around the confirmed attendees without
//! re-running start-node selection.
//!
//! ```text
//! cargo run --release --example online_replanning
//! ```

use waso::prelude::*;
use waso_datasets::synthetic;

fn main() {
    let graph = synthetic::facebook_like_n(800, 77);
    let k = 8;
    let instance = WasoInstance::new(graph, k).expect("valid instance");

    // The replanning engine's settings come from the same SolverSpec
    // currency as everything else in the workspace.
    let spec = SolverSpec::cbas_nd().budget(400).stages(5).start_nodes(10);
    let mut planner = OnlinePlanner::from_spec(instance, &spec, 11).expect("initial plan");
    println!("Initial recommendation: {}", planner.current());

    // Round 1: the first two invitees confirm, the third declines.
    let plan = planner.current().nodes().to_vec();
    planner.confirm(&plan[..2]).expect("confirmations recorded");
    let declined = plan[2];
    println!("\n{declined} declined — replanning around the 2 confirmed attendees…");
    let new_plan = planner.decline(&[declined]).expect("replanned");
    println!("New recommendation:     {new_plan}");
    assert!(!new_plan.contains(declined));
    assert!(new_plan.contains(plan[0]) && new_plan.contains(plan[1]));

    // Round 2: another decline; confirmed attendees must persist again.
    let second_out = planner
        .current()
        .nodes()
        .iter()
        .copied()
        .find(|v| !planner.confirmed().contains(v))
        .expect("someone is still unconfirmed");
    println!("\n{second_out} declined too — replanning…");
    let final_plan = planner.decline(&[second_out]).expect("replanned");
    println!("Final recommendation:   {final_plan}");
    assert!(!final_plan.contains(second_out));
    assert_eq!(final_plan.len(), k);

    println!(
        "\n{} replanning rounds; every confirmed attendee kept their seat.",
        planner.replans()
    );
}

//! Reproducibility guarantees: everything in the pipeline is a pure
//! function of its seed — datasets, solvers, the parallel driver, and the
//! user-study simulation.

use waso::prelude::*;
use waso_datasets::synthetic::{self, Scale};
use waso_datasets::userstudy;

#[test]
fn datasets_are_pure_functions_of_their_seed() {
    for seed in [0u64, 1, 99] {
        assert_eq!(
            synthetic::facebook_like(Scale::Smoke, seed),
            synthetic::facebook_like(Scale::Smoke, seed)
        );
        assert_eq!(
            synthetic::dblp_like(Scale::Smoke, seed),
            synthetic::dblp_like(Scale::Smoke, seed)
        );
        assert_eq!(
            synthetic::flickr_like(Scale::Smoke, seed),
            synthetic::flickr_like(Scale::Smoke, seed)
        );
    }
    assert_ne!(
        synthetic::facebook_like(Scale::Smoke, 1),
        synthetic::facebook_like(Scale::Smoke, 2),
        "different seeds must differ"
    );
}

#[test]
fn all_solvers_are_deterministic_given_a_seed() {
    let graph = synthetic::facebook_like(Scale::Smoke, 3);
    let inst = WasoInstance::new(graph, 7).unwrap();

    let run = |seed: u64| -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let mut cbas_cfg = CbasConfig::with_budget(90);
        cbas_cfg.stages = Some(3);
        cbas_cfg.num_start_nodes = Some(6);
        let mut nd_cfg = CbasNdConfig::with_budget(90);
        nd_cfg.base = cbas_cfg.clone();
        let mut solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(DGreedy::new()),
            Box::new(RGreedy::new(RGreedyConfig::with_budget(40))),
            Box::new(Cbas::new(cbas_cfg)),
            Box::new(CbasNd::new(nd_cfg.clone())),
            Box::new(CbasNd::new(nd_cfg.clone().gaussian())),
        ];
        for s in solvers.iter_mut() {
            let r = s.solve_seeded(&inst, seed).unwrap();
            out.push((s.name().to_string(), r.group.willingness()));
        }
        out
    };

    assert_eq!(run(5), run(5));
    // And seeds matter for the randomized ones (statistically: at least one
    // solver changes its answer between two seeds on this instance).
    let a = run(5);
    let b = run(6);
    assert!(
        a.iter().zip(&b).any(|((_, x), (_, y))| x != y),
        "different seeds should explore differently"
    );
}

#[test]
fn parallel_driver_is_thread_count_invariant() {
    let graph = synthetic::dblp_like(Scale::Smoke, 4);
    let inst = WasoInstance::new(graph, 6).unwrap();
    let mut cfg = CbasNdConfig::with_budget(120);
    cfg.base.stages = Some(4);
    cfg.base.num_start_nodes = Some(8);

    let serial = CbasNd::new(cfg.clone()).solve_seeded(&inst, 9).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let par = ParallelCbasNd::new(cfg.clone(), threads)
            .solve_seeded(&inst, 9)
            .unwrap();
        assert_eq!(
            par.group, serial.group,
            "{threads} threads diverged from serial"
        );
    }
}

#[test]
fn user_study_simulation_is_reproducible() {
    let p1 = userstudy::study_problem(20, 7, 42);
    let p2 = userstudy::study_problem(20, 7, 42);
    assert_eq!(p1.instance.graph(), p2.instance.graph());
    assert_eq!(p1.lambda, p2.lambda);

    let planner = userstudy::ManualPlanner::new();
    let a = planner.plan(&p1.instance, None, 7);
    let b = planner.plan(&p2.instance, None, 7);
    assert_eq!(a.group.unwrap().nodes(), b.group.unwrap().nodes());
    assert_eq!(a.evaluations, b.evaluations);
}

#[test]
fn online_planner_replays_identically() {
    let graph = synthetic::facebook_like(Scale::Smoke, 6);
    let inst = WasoInstance::new(graph, 6).unwrap();
    let mut cfg = CbasNdConfig::with_budget(80);
    cfg.base.stages = Some(3);

    let run = || {
        let mut planner = OnlinePlanner::new(inst.clone(), cfg.clone(), 3).unwrap();
        let victim = planner.current().nodes()[0];
        planner.decline(&[victim]).unwrap();
        planner.current().clone()
    };
    assert_eq!(run(), run());
}

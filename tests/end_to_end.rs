//! End-to-end pipeline tests: dataset generation → every solver →
//! validation → cross-solver sanity.
//!
//! The solver roster is *derived from the registry*: every registered
//! heuristic is exercised, so a newly registered solver is covered here
//! with zero test changes.

use waso::prelude::*;
use waso_datasets::synthetic::{self, Scale};

/// Every registered sampling/greedy solver at end-to-end test settings
/// (the exact solver is exercised separately — it cannot run on the
/// larger smoke graphs).
fn solvers(budget: u64) -> Vec<Box<dyn Solver + Send>> {
    let registry = waso::registry();
    registry
        .entries()
        .iter()
        .filter(|e| !e.capabilities.exact)
        .map(|entry| {
            let mut spec = SolverSpec::new(entry.name);
            if entry.options.contains(&"budget") {
                // Costly solvers (per-candidate pricing) get a small budget,
                // like the paper's aborted-RGreedy practice.
                spec = spec.budget(if entry.costly {
                    budget.min(100)
                } else {
                    budget
                });
            }
            if entry.options.contains(&"stages") {
                spec = spec.stages(4);
            }
            if entry.options.contains(&"start-nodes") {
                spec = spec.start_nodes(8);
            }
            registry
                .build(&spec)
                .unwrap_or_else(|e| panic!("spec for {} unusable: {e}", entry.name))
        })
        .collect()
}

#[test]
fn every_solver_produces_valid_groups_on_every_dataset() {
    let datasets = [
        ("facebook", synthetic::facebook_like(Scale::Smoke, 1)),
        ("dblp", synthetic::dblp_like(Scale::Smoke, 1)),
        ("flickr", synthetic::flickr_like(Scale::Smoke, 1)),
    ];
    for (name, graph) in datasets {
        let inst = WasoInstance::new(graph, 8).expect("k=8 fits the smoke graphs");
        for solver in solvers(120).iter_mut() {
            let res = solver
                .solve_seeded(&inst, 7)
                .unwrap_or_else(|e| panic!("{} failed on {name}: {e}", solver.name()));
            // Group::new re-validates size, distinctness and connectivity.
            res.group
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{} invalid on {name}: {e}", solver.name()));
            assert!(res.group.willingness().is_finite());
            assert!(res.stats.elapsed.as_nanos() > 0);
        }
    }
}

#[test]
fn randomized_solvers_never_beat_the_exact_optimum() {
    let graph = synthetic::dblp_like_n(80, 3);
    let inst = WasoInstance::new(graph, 5).unwrap();
    let exact = waso::registry()
        .build(&SolverSpec::exact())
        .unwrap()
        .solve_seeded(&inst, 0)
        .expect("feasible");
    for solver in solvers(150).iter_mut() {
        let res = solver.solve_seeded(&inst, 3).unwrap();
        assert!(
            res.group.willingness() <= exact.group.willingness() + 1e-9,
            "{} exceeded the optimum: {} > {}",
            solver.name(),
            res.group.willingness(),
            exact.group.willingness()
        );
    }
}

#[test]
fn budgets_are_respected_exactly() {
    let graph = synthetic::facebook_like(Scale::Smoke, 5);
    let inst = WasoInstance::new(graph, 6).unwrap();
    for budget in [40u64, 100, 250] {
        let mut cfg = CbasNdConfig::with_budget(budget);
        cfg.base.stages = Some(5);
        cfg.base.num_start_nodes = Some(5);
        let res = CbasNd::new(cfg).solve_seeded(&inst, 2).unwrap();
        assert_eq!(res.stats.samples_drawn, budget, "budget {budget}");
    }
}

#[test]
fn quality_improves_with_budget_on_average() {
    let graph = synthetic::facebook_like(Scale::Smoke, 9);
    let inst = WasoInstance::new(graph, 10).unwrap();
    let quality_at = |budget: u64| -> f64 {
        let mut total = 0.0;
        for seed in 0..5 {
            let mut cfg = CbasNdConfig::with_budget(budget);
            cfg.base.stages = Some(5);
            cfg.base.num_start_nodes = Some(8);
            total += CbasNd::new(cfg)
                .solve_seeded(&inst, seed)
                .unwrap()
                .group
                .willingness();
        }
        total / 5.0
    };
    let small = quality_at(50);
    let large = quality_at(800);
    assert!(
        large >= small,
        "more budget should not hurt: T=50 → {small:.2}, T=800 → {large:.2}"
    );
}

#[test]
fn graph_io_roundtrips_through_the_full_pipeline() {
    // Generate → serialize → parse → solve: byte-identical behaviour.
    let graph = synthetic::flickr_like(Scale::Smoke, 4);
    let text = waso::graph::io::to_string(&graph);
    let parsed = waso::graph::io::from_str(&text).expect("roundtrip parse");
    assert_eq!(graph, parsed);

    let inst_a = WasoInstance::new(graph, 6).unwrap();
    let inst_b = WasoInstance::new(parsed, 6).unwrap();
    let a = CbasNd::new(CbasNdConfig::fast())
        .solve_seeded(&inst_a, 11)
        .unwrap();
    let b = CbasNd::new(CbasNdConfig::fast())
        .solve_seeded(&inst_b, 11)
        .unwrap();
    assert_eq!(a.group, b.group);
}

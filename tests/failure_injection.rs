//! Failure injection: a pool worker that panics mid-stage must be
//! invisible in results. The `SharedPool` detects the death on the job's
//! reply channel, respawns the slot, re-issues the in-flight samples, and
//! keeps serving — no poisoning, no hangs, no result drift. These tests
//! drive that end-to-end through the public session API (the exec-level
//! choreography is unit-tested in `waso-algos`).
//!
//! Worker panics unwind noisily; the panic messages on stderr are
//! expected output of this suite.

use std::sync::Arc;

use waso::algos::{SharedPool, SolverSpec};
use waso::prelude::*;
use waso_datasets::synthetic;

fn spec() -> SolverSpec {
    SolverSpec::cbas_nd().budget(60).stages(4).threads(3)
}

fn baseline(graph: &SocialGraph) -> SolveResult {
    WasoSession::new(graph.clone())
        .k(5)
        .seed(7)
        .solve(&spec())
        .unwrap()
}

#[test]
fn worker_panic_mid_stage_is_invisible_and_heals_the_pool() {
    let graph = synthetic::facebook_like_n(80, 3);
    let healthy = baseline(&graph);

    let pool = Arc::new(SharedPool::new(3));
    let session = WasoSession::new(graph.clone())
        .k(5)
        .seed(7)
        .attach_pool(Arc::clone(&pool));

    // Worker 1 dies on the first chunk of stage 2 — mid-solve, with that
    // chunk's samples in flight.
    pool.inject_worker_panic(1, 2);
    let wounded = session.solve(&spec()).unwrap();
    assert_eq!(wounded.group, healthy.group, "panic changed the answer");
    assert_eq!(wounded.stats.samples_drawn, healthy.stats.samples_drawn);
    assert_eq!(wounded.stats.backtracks, healthy.stats.backtracks);
    assert_eq!(pool.respawned_workers(), 1, "the dead worker was respawned");

    // The *next* solve on the same session succeeds on the healed pool.
    // A repeat of the identical spec would be a memo hit (bit-identical,
    // but no pool traffic), so nudge the budget to force a real run.
    let next_spec = spec().budget(61);
    let next = session.solve(&next_spec).unwrap();
    let next_healthy = WasoSession::new(graph.clone())
        .k(5)
        .seed(7)
        .solve(&next_spec)
        .unwrap();
    assert_eq!(next.group, next_healthy.group);
    assert_eq!(pool.respawned_workers(), 1, "healed once, healed for good");
}

#[test]
fn every_worker_slot_recovers_at_every_stage() {
    let graph = synthetic::facebook_like_n(60, 3);
    let healthy = baseline(&graph);
    for slot in 0..3 {
        for stage in [0u64, 3] {
            let pool = Arc::new(SharedPool::new(3));
            let session = WasoSession::new(graph.clone())
                .k(5)
                .seed(7)
                .attach_pool(Arc::clone(&pool));
            pool.inject_worker_panic(slot, stage);
            let wounded = session.solve(&spec()).unwrap();
            assert_eq!(
                wounded.group, healthy.group,
                "slot={slot} stage={stage} changed the answer"
            );
            assert_eq!(pool.respawned_workers(), 1, "slot={slot} stage={stage}");
        }
    }
}

#[test]
fn worker_panic_during_a_concurrent_batch_leaves_every_job_identical() {
    let graph = synthetic::facebook_like_n(70, 3);
    let specs = vec![
        SolverSpec::cbas_nd().budget(60).stages(4).threads(2),
        SolverSpec::cbas().budget(60).stages(3).threads(4),
        SolverSpec::cbas_nd().budget(40).stages(4).threads(1),
        SolverSpec::dgreedy(),
    ];
    let alone: Vec<_> = specs
        .iter()
        .map(|s| {
            WasoSession::new(graph.clone())
                .k(4)
                .seed(3)
                .solve(s)
                .unwrap()
        })
        .collect();

    let pool = Arc::new(SharedPool::new(2));
    let session = WasoSession::new(graph.clone())
        .k(4)
        .seed(3)
        .attach_pool(Arc::clone(&pool));
    // Whichever job's chunk reaches worker 0 at its stage 1 first takes
    // the hit; every job must come out unchanged regardless.
    pool.inject_worker_panic(0, 1);
    let batch = session.solve_batch(&specs).unwrap();
    for ((spec, a), b) in specs.iter().zip(&alone).zip(&batch) {
        let b = b.as_ref().unwrap();
        assert_eq!(b.group, a.group, "{spec}");
        assert_eq!(b.stats.samples_drawn, a.stats.samples_drawn, "{spec}");
    }
    assert_eq!(pool.respawned_workers(), 1);
}

#[test]
fn session_drop_mid_batch_after_job_errors_neither_hangs_nor_leaks() {
    // The detach/drop regression: a batch whose jobs partly fail, then
    // the session is dropped while the pool is still warm. Teardown must
    // not depend on channel-drop ordering — the pool drop joins every
    // worker, so a wedged worker would hang this test (and trip the
    // suite's timeout) rather than leak.
    let graph = synthetic::facebook_like_n(50, 3);
    let pool = Arc::new(SharedPool::new(2));
    {
        let session = WasoSession::new(graph.clone())
            .k(4)
            .seed(1)
            .attach_pool(Arc::clone(&pool));
        let outcomes = session
            .solve_many([
                "cbas-nd:budget=40,stages=2,threads=2",
                "no-such-solver",
                "cbas:budget=40,rho=1", // unsupported option → job error
                "cbas-nd:budget=40,stages=2,threads=4",
            ])
            .unwrap();
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_err());
        assert!(outcomes[2].is_err());
        assert!(outcomes[3].is_ok());
        // Session dropped here with the pool mid-life.
    }
    assert_eq!(Arc::strong_count(&pool), 1, "the session released the pool");
    // An injected death *after* the tenants detached must not wedge the
    // final teardown either: arm a failpoint that never fires.
    pool.inject_worker_panic(0, 99);
    drop(pool); // joins both workers; hanging here fails the test
}

#[test]
fn repeated_injections_keep_healing() {
    let graph = synthetic::facebook_like_n(60, 3);
    let pool = Arc::new(SharedPool::new(3));
    let session = WasoSession::new(graph.clone())
        .k(5)
        .seed(7)
        .attach_pool(Arc::clone(&pool));
    for round in 1..=3u64 {
        // Distinct budgets per round: a repeat of an identical spec is a
        // memo hit that never reaches the pool, and this test is about
        // the pool healing under repeated injections.
        let round_spec = spec().budget(50 + 10 * round);
        let healthy = WasoSession::new(graph.clone())
            .k(5)
            .seed(7)
            .solve(&round_spec)
            .unwrap();
        pool.inject_worker_panic((round as usize) % 3, round % 4);
        let wounded = session.solve(&round_spec).unwrap();
        assert_eq!(wounded.group, healthy.group, "round {round}");
        assert_eq!(pool.respawned_workers(), round, "round {round}");
    }
}

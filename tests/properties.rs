//! Cross-crate property-based tests: solver outputs are always feasible,
//! never beat the exact optimum, and algebraic identities hold on random
//! instances.

use proptest::prelude::*;
use waso::prelude::*;
use waso_exact::{exhaustive_optimum, BranchBound};
use waso_graph::{generate, InterestModel, ScoreModel, TightnessModel};

fn random_instance(
    seed: u64,
    n: usize,
    extra_edges: usize,
    k: usize,
    connected: bool,
) -> WasoInstance {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    // A spanning path plus random extra edges: always connected, arbitrary
    // density.
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    let extra = generate::erdos_renyi_gnm(n, extra_edges.min(n * (n - 1) / 2), &mut rng);
    edges.extend(extra.edges);
    let topo = generate::GraphTopology::new(n, edges);
    let model = ScoreModel {
        interest: InterestModel::Uniform { lo: -0.5, hi: 1.5 },
        tightness: TightnessModel::Uniform { lo: -0.3, hi: 1.0 },
    };
    let g = model.realize(&topo, &mut rng);
    if connected {
        WasoInstance::new(g, k).unwrap()
    } else {
        WasoInstance::without_connectivity(g, k).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn solvers_always_return_feasible_groups(
        seed in 0u64..10_000,
        n in 8usize..20,
        extra in 0usize..25,
        k in 2usize..6,
        connected: bool,
    ) {
        let inst = random_instance(seed, n, extra, k.min(n), connected);
        let mut cfg = CbasNdConfig::with_budget(60);
        cfg.base.stages = Some(3);
        let mut solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(DGreedy::new()),
            Box::new(RGreedy::new(RGreedyConfig::with_budget(30))),
            Box::new(CbasNd::new(cfg)),
        ];
        for s in solvers.iter_mut() {
            if let Ok(res) = s.solve_seeded(&inst, seed) {
                prop_assert!(res.group.validate(&inst).is_ok(), "{} invalid", s.name());
            }
        }
    }

    /// The staged engine's determinism contract, generalized from the
    /// hand-picked cases in `parallel.rs`: for random instances, budgets
    /// and stage counts, the pooled backend is bit-identical to the serial
    /// solver at every thread count — same group, same samples drawn, same
    /// pruned-start and backtrack counts.
    #[test]
    fn parallel_engine_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        n in 12usize..48,
        extra in 0usize..40,
        k in 2usize..7,
        budget in 8u64..160,
        stages in 1u32..6,
        backtrack: bool,
    ) {
        let inst = random_instance(seed, n, extra, k.min(n), true);
        let mut cfg = CbasNdConfig::with_budget(budget);
        cfg.base.stages = Some(stages);
        if backtrack {
            cfg = cfg.with_backtracking(0.05);
        }
        let serial = CbasNd::new(cfg.clone()).solve_seeded(&inst, seed);
        for threads in [1usize, 2, 4, 8] {
            let par = ParallelCbasNd::new(cfg.clone(), threads).solve_seeded(&inst, seed);
            match (&serial, &par) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(&s.group, &p.group, "threads={}", threads);
                    prop_assert_eq!(s.stats.samples_drawn, p.stats.samples_drawn);
                    prop_assert_eq!(s.stats.pruned_start_nodes, p.stats.pruned_start_nodes);
                    prop_assert_eq!(s.stats.backtracks, p.stats.backtracks);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (s, p) => prop_assert!(
                    false,
                    "feasibility diverged at threads={}: serial ok={}, parallel ok={}",
                    threads, s.is_ok(), p.is_ok()
                ),
            }
        }
    }

    /// The same contract for **partial-mode** (required-attendee) solves:
    /// the pool serves them too, growing every sample from the seed set,
    /// and must match the serial path bit-for-bit at every thread count —
    /// including agreeing on infeasibility.
    #[test]
    fn pooled_partial_mode_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        n in 12usize..40,
        extra in 0usize..30,
        k in 3usize..7,
        budget in 8u64..120,
        stages in 1u32..5,
        req_count in 1usize..3,
    ) {
        let inst = random_instance(seed, n, extra, k, true);
        // The spanning path makes low-id nodes mutually reachable; any
        // subset of them is a valid (connected-completable) requirement.
        let required: Vec<NodeId> = (0..req_count as u32).map(NodeId).collect();
        let mut cfg = CbasNdConfig::with_budget(budget);
        cfg.base.stages = Some(stages);
        let serial = CbasNd::new(cfg.clone()).solve_with_required(&inst, &required, seed);
        for threads in [1usize, 2, 4, 8] {
            let par = ParallelCbasNd::new(cfg.clone(), threads)
                .solve_with_required(&inst, &required, seed);
            match (&serial, &par) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(&s.group, &p.group, "threads={}", threads);
                    prop_assert_eq!(s.stats.samples_drawn, p.stats.samples_drawn);
                    prop_assert_eq!(s.stats.backtracks, p.stats.backtracks);
                    for &v in &required {
                        prop_assert!(p.group.contains(v));
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (s, p) => prop_assert!(
                    false,
                    "feasibility diverged at threads={}: serial ok={}, parallel ok={}",
                    threads, s.is_ok(), p.is_ok()
                ),
            }
        }
    }

    /// Batch-API determinism: one `solve_batch` over a session's shared
    /// instance and held worker pool returns exactly what solving each
    /// spec in its own fresh session would.
    #[test]
    fn batch_solves_are_identical_to_per_spec_solves(
        seed in 0u64..10_000,
        n in 12usize..40,
        extra in 0usize..30,
        k in 2usize..6,
        budget in 8u64..100,
        threads in 1usize..5,
    ) {
        let inst = random_instance(seed, n, extra, k, true);
        let graph = inst.graph().clone();
        let specs = vec![
            SolverSpec::cbas_nd().budget(budget).stages(3).threads(threads),
            SolverSpec::cbas().budget(budget).stages(2).threads(threads),
            SolverSpec::cbas_nd().budget(budget).stages(2).threads(threads).require([NodeId(0)]),
            SolverSpec::dgreedy(),
        ];
        let session = WasoSession::new(graph.clone()).k(k).seed(seed);
        let batch = session.solve_batch(&specs).unwrap();
        for (spec, outcome) in specs.iter().zip(&batch) {
            let alone = WasoSession::new(graph.clone()).k(k).seed(seed).solve(spec);
            match (outcome, &alone) {
                (Ok(b), Ok(a)) => {
                    prop_assert_eq!(&b.group, &a.group, "{}", spec);
                    prop_assert_eq!(b.stats.samples_drawn, a.stats.samples_drawn);
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "batch/sequential feasibility diverged for {}: batch ok={}, alone ok={}",
                    spec, outcome.is_ok(), alone.is_ok()
                ),
            }
        }
    }

    #[test]
    fn branch_and_bound_is_never_beaten(
        seed in 0u64..10_000,
        n in 8usize..14,
        extra in 0usize..15,
        k in 2usize..5,
    ) {
        let inst = random_instance(seed, n, extra, k, true);
        let exact = BranchBound::new().solve(&inst, None);
        let brute = exhaustive_optimum(&inst);
        match (exact, brute) {
            (Some(a), Some(b)) => {
                prop_assert!((a.group.willingness() - b.willingness()).abs() < 1e-9);
                // No heuristic may exceed it.
                let heur = DGreedy::new().solve_seeded(&inst, 0);
                if let Ok(h) = heur {
                    prop_assert!(h.group.willingness() <= a.group.willingness() + 1e-9);
                }
            }
            (None, None) => {}
            other => prop_assert!(false, "feasibility mismatch {:?}", other.0.is_some()),
        }
    }

    #[test]
    fn lambda_interpolates_between_scenarios(
        seed in 0u64..10_000,
        n in 6usize..14,
        lambda in 0.0..1.0f64,
    ) {
        // W_λ(F) = λ·W_interest(F) + (1-λ)·W_tightness(F) for uniform λ.
        let inst = random_instance(seed, n, 10, 3, true);
        let g = inst.graph().clone();
        let nodes: Vec<NodeId> = (0..3).map(|i| NodeId(i as u32)).collect();

        let weighted = waso::core::instance::apply_lambda(&g, &vec![lambda; n]).unwrap();
        let interest_only = waso::core::instance::apply_lambda(&g, &vec![1.0; n]).unwrap();
        let tight_only = waso::core::instance::apply_lambda(&g, &vec![0.0; n]).unwrap();

        let w = waso::core::willingness(&weighted, &nodes);
        let wi = waso::core::willingness(&interest_only, &nodes);
        let wt = waso::core::willingness(&tight_only, &nodes);
        prop_assert!((w - (lambda * wi + (1.0 - lambda) * wt)).abs() < 1e-9);
    }

    #[test]
    fn group_willingness_is_permutation_invariant(
        seed in 0u64..10_000,
        n in 6usize..16,
    ) {
        let inst = random_instance(seed, n, 12, 4, false);
        let g = inst.graph();
        let forward: Vec<NodeId> = (0..4u32).map(NodeId).collect();
        let backward: Vec<NodeId> = (0..4u32).rev().map(NodeId).collect();
        // Summation order differs, so compare up to float associativity.
        let a = waso::core::willingness(g, &forward);
        let b = waso::core::willingness(g, &backward);
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }
}

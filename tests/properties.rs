//! Cross-crate property-based tests: solver outputs are always feasible,
//! never beat the exact optimum, and algebraic identities hold on random
//! instances.

use proptest::prelude::*;
use waso::prelude::*;
use waso_exact::{exhaustive_optimum, BranchBound};
use waso_graph::{generate, InterestModel, ScoreModel, TightnessModel};

fn random_instance(
    seed: u64,
    n: usize,
    extra_edges: usize,
    k: usize,
    connected: bool,
) -> WasoInstance {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    // A spanning path plus random extra edges: always connected, arbitrary
    // density.
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    let extra = generate::erdos_renyi_gnm(n, extra_edges.min(n * (n - 1) / 2), &mut rng);
    edges.extend(extra.edges);
    let topo = generate::GraphTopology::new(n, edges);
    let model = ScoreModel {
        interest: InterestModel::Uniform { lo: -0.5, hi: 1.5 },
        tightness: TightnessModel::Uniform { lo: -0.3, hi: 1.0 },
    };
    let g = model.realize(&topo, &mut rng);
    if connected {
        WasoInstance::new(g, k).unwrap()
    } else {
        WasoInstance::without_connectivity(g, k).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn solvers_always_return_feasible_groups(
        seed in 0u64..10_000,
        n in 8usize..20,
        extra in 0usize..25,
        k in 2usize..6,
        connected: bool,
    ) {
        let inst = random_instance(seed, n, extra, k.min(n), connected);
        let mut cfg = CbasNdConfig::with_budget(60);
        cfg.base.stages = Some(3);
        let mut solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(DGreedy::new()),
            Box::new(RGreedy::new(RGreedyConfig::with_budget(30))),
            Box::new(CbasNd::new(cfg)),
        ];
        for s in solvers.iter_mut() {
            if let Ok(res) = s.solve_seeded(&inst, seed) {
                prop_assert!(res.group.validate(&inst).is_ok(), "{} invalid", s.name());
            }
        }
    }

    /// The staged engine's determinism contract, generalized from the
    /// hand-picked cases in `parallel.rs`: for random instances, budgets
    /// and stage counts, the pooled backend is bit-identical to the serial
    /// solver at every thread count — same group, same samples drawn, same
    /// pruned-start and backtrack counts.
    #[test]
    fn parallel_engine_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        n in 12usize..48,
        extra in 0usize..40,
        k in 2usize..7,
        budget in 8u64..160,
        stages in 1u32..6,
        backtrack: bool,
    ) {
        let inst = random_instance(seed, n, extra, k.min(n), true);
        let mut cfg = CbasNdConfig::with_budget(budget);
        cfg.base.stages = Some(stages);
        if backtrack {
            cfg = cfg.with_backtracking(0.05);
        }
        let serial = CbasNd::new(cfg.clone()).solve_seeded(&inst, seed);
        for threads in [1usize, 2, 4, 8] {
            let par = ParallelCbasNd::new(cfg.clone(), threads).solve_seeded(&inst, seed);
            match (&serial, &par) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(&s.group, &p.group, "threads={}", threads);
                    prop_assert_eq!(s.stats.samples_drawn, p.stats.samples_drawn);
                    prop_assert_eq!(s.stats.pruned_start_nodes, p.stats.pruned_start_nodes);
                    prop_assert_eq!(s.stats.backtracks, p.stats.backtracks);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (s, p) => prop_assert!(
                    false,
                    "feasibility diverged at threads={}: serial ok={}, parallel ok={}",
                    threads, s.is_ok(), p.is_ok()
                ),
            }
        }
    }

    /// The same contract for **partial-mode** (required-attendee) solves:
    /// the pool serves them too, growing every sample from the seed set,
    /// and must match the serial path bit-for-bit at every thread count —
    /// including agreeing on infeasibility.
    #[test]
    fn pooled_partial_mode_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        n in 12usize..40,
        extra in 0usize..30,
        k in 3usize..7,
        budget in 8u64..120,
        stages in 1u32..5,
        req_count in 1usize..3,
    ) {
        let inst = random_instance(seed, n, extra, k, true);
        // The spanning path makes low-id nodes mutually reachable; any
        // subset of them is a valid (connected-completable) requirement.
        let required: Vec<NodeId> = (0..req_count as u32).map(NodeId).collect();
        let mut cfg = CbasNdConfig::with_budget(budget);
        cfg.base.stages = Some(stages);
        let serial = CbasNd::new(cfg.clone()).solve_with_required(&inst, &required, seed);
        for threads in [1usize, 2, 4, 8] {
            let par = ParallelCbasNd::new(cfg.clone(), threads)
                .solve_with_required(&inst, &required, seed);
            match (&serial, &par) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(&s.group, &p.group, "threads={}", threads);
                    prop_assert_eq!(s.stats.samples_drawn, p.stats.samples_drawn);
                    prop_assert_eq!(s.stats.backtracks, p.stats.backtracks);
                    for &v in &required {
                        prop_assert!(p.group.contains(v));
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (s, p) => prop_assert!(
                    false,
                    "feasibility diverged at threads={}: serial ok={}, parallel ok={}",
                    threads, s.is_ok(), p.is_ok()
                ),
            }
        }
    }

    /// Batch-API determinism: one `solve_batch` over a session's shared
    /// instance and held worker pool returns exactly what solving each
    /// spec in its own fresh session would.
    #[test]
    fn batch_solves_are_identical_to_per_spec_solves(
        seed in 0u64..10_000,
        n in 12usize..40,
        extra in 0usize..30,
        k in 2usize..6,
        budget in 8u64..100,
        threads in 1usize..5,
    ) {
        let inst = random_instance(seed, n, extra, k, true);
        let graph = inst.graph().clone();
        let specs = vec![
            SolverSpec::cbas_nd().budget(budget).stages(3).threads(threads),
            SolverSpec::cbas().budget(budget).stages(2).threads(threads),
            SolverSpec::cbas_nd().budget(budget).stages(2).threads(threads).require([NodeId(0)]),
            SolverSpec::dgreedy(),
        ];
        let session = WasoSession::new(graph.clone()).k(k).seed(seed);
        let batch = session.solve_batch(&specs).unwrap();
        for (spec, outcome) in specs.iter().zip(&batch) {
            let alone = WasoSession::new(graph.clone()).k(k).seed(seed).solve(spec);
            match (outcome, &alone) {
                (Ok(b), Ok(a)) => {
                    prop_assert_eq!(&b.group, &a.group, "{}", spec);
                    prop_assert_eq!(b.stats.samples_drawn, a.stats.samples_drawn);
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "batch/sequential feasibility diverged for {}: batch ok={}, alone ok={}",
                    spec, outcome.is_ok(), alone.is_ok()
                ),
            }
        }
    }

    /// The SharedPool concurrency contract: random instances and specs
    /// run as (a) sequential per-spec solves in fresh sessions, (b) one
    /// concurrent shared-pool `solve_batch`, and (c) two sessions
    /// attached to the same pool, each batching from its own OS thread —
    /// all three bit-identical per job, for pool sizes 1–8.
    #[test]
    fn shared_pool_concurrency_is_bit_identical(
        seed in 0u64..10_000,
        n in 12usize..36,
        extra in 0usize..25,
        k in 2usize..6,
        budget in 8u64..80,
        pool_threads in 1usize..9,
    ) {
        use std::sync::Arc;
        use waso::algos::SharedPool;

        let inst = random_instance(seed, n, extra, k, true);
        let graph = inst.graph().clone();
        let specs = vec![
            SolverSpec::cbas_nd().budget(budget).stages(3).threads(2),
            SolverSpec::cbas().budget(budget).stages(2).threads(5),
            SolverSpec::cbas_nd().budget(budget).stages(2).threads(1).require([NodeId(0)]),
            SolverSpec::dgreedy(),
        ];

        // (a) the sequential baseline: each spec alone in a fresh session.
        let alone: Vec<_> = specs
            .iter()
            .map(|s| WasoSession::new(graph.clone()).k(k).seed(seed).solve(s))
            .collect();

        let check = |batch: &[Result<waso::algos::SolveResult, SessionError>], tag: &str| {
            for ((spec, a), b) in specs.iter().zip(&alone).zip(batch) {
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.group, &b.group, "{}: {}", tag, spec);
                        prop_assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
                        prop_assert_eq!(a.stats.backtracks, b.stats.backtracks);
                    }
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(
                        false,
                        "{}: feasibility diverged for {}: alone ok={}, pooled ok={}",
                        tag, spec, a.is_ok(), b.is_ok()
                    ),
                }
            }
        };

        // (b) one concurrent batch over a shared pool.
        let pool = Arc::new(SharedPool::new(pool_threads));
        let session = WasoSession::new(graph.clone())
            .k(k)
            .seed(seed)
            .attach_pool(Arc::clone(&pool));
        check(&session.solve_batch(&specs).unwrap(), "batch");

        // (c) two sessions sharing the pool, racing from two OS threads.
        let s1 = WasoSession::new(graph.clone()).k(k).seed(seed).attach_pool(Arc::clone(&pool));
        let s2 = WasoSession::new(graph.clone()).k(k).seed(seed).attach_pool(Arc::clone(&pool));
        let (b1, b2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(|| s1.solve_batch(&specs).unwrap());
            let h2 = scope.spawn(|| s2.solve_batch(&specs).unwrap());
            (h1.join().unwrap(), h2.join().unwrap())
        });
        check(&b1, "two-sessions/1");
        check(&b2, "two-sessions/2");
        // Healthy runs never respawn a worker.
        prop_assert_eq!(pool.respawned_workers(), 0);
    }

    /// Round-robin vs chunked deals are pure scheduling choices: the same
    /// solves over `Deal::Striped` and `Deal::Chunked` pools are
    /// bit-identical (pinning the ROADMAP "work stealing / chunked
    /// striping" item's determinism audit down in advance).
    #[test]
    fn chunked_deal_is_bit_identical_to_striped(
        seed in 0u64..10_000,
        n in 12usize..36,
        extra in 0usize..25,
        k in 2usize..6,
        budget in 8u64..80,
        stages in 1u32..5,
        pool_threads in 1usize..9,
    ) {
        use std::sync::Arc;
        use waso::algos::{Deal, SharedPool};

        let inst = random_instance(seed, n, extra, k, true);
        let graph = inst.graph().clone();
        let spec = SolverSpec::cbas_nd().budget(budget).stages(stages).threads(3);
        let serial = WasoSession::new(graph.clone()).k(k).seed(seed)
            .solve(&SolverSpec::cbas_nd().budget(budget).stages(stages));
        for deal in [Deal::Striped, Deal::Chunked] {
            let pool = Arc::new(SharedPool::with_deal(pool_threads, deal));
            let session = WasoSession::new(graph.clone()).k(k).seed(seed).attach_pool(pool);
            let dealt = session.solve(&spec);
            match (&serial, &dealt) {
                (Ok(s), Ok(d)) => {
                    prop_assert_eq!(&s.group, &d.group, "{:?}", deal);
                    prop_assert_eq!(s.stats.samples_drawn, d.stats.samples_drawn);
                    prop_assert_eq!(s.stats.backtracks, d.stats.backtracks);
                    prop_assert_eq!(s.stats.pruned_start_nodes, d.stats.pruned_start_nodes);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(
                    false,
                    "feasibility diverged for {:?}: serial ok={}, dealt ok={}",
                    deal, serial.is_ok(), dealt.is_ok()
                ),
            }
        }
    }

    /// The tentpole determinism pin: `submit` + `wait` is bit-identical
    /// to the blocking `solve` — and both to a direct registry-built
    /// solver run with no session machinery at all — for random
    /// instances, thread counts 1–8, and both pool modes (shared pool
    /// jobs and private per-solve pools). The handle plumbing (job
    /// thread, channels, control) must be invisible in results.
    #[test]
    fn submit_wait_is_bit_identical_to_blocking_solve(
        seed in 0u64..10_000,
        n in 12usize..40,
        extra in 0usize..30,
        k in 2usize..6,
        budget in 8u64..100,
        threads in 1usize..9,
        private_pool: bool,
    ) {
        use std::sync::Arc;

        let inst = random_instance(seed, n, extra, k, true);
        let graph = inst.graph().clone();
        let mut spec = SolverSpec::cbas_nd().budget(budget).stages(3).threads(threads);
        if private_pool {
            spec = spec.pool(PoolMode::Private);
        }

        // Ground truth: the raw solver, no session, no threads spawned
        // by the harness.
        let registry = waso::registry();
        let direct = registry.build(&spec).unwrap()
            .solve_with_required(&Arc::new(inst), &[], seed);

        let blocking = WasoSession::new(graph.clone()).k(k).seed(seed).solve(&spec);
        let handled = WasoSession::new(graph).k(k).seed(seed)
            .submit(&spec)
            .and_then(SolveHandle::wait);
        match (&direct, &blocking, &handled) {
            (Ok(d), Ok(b), Ok(h)) => {
                prop_assert_eq!(&d.group, &b.group, "direct vs blocking");
                prop_assert_eq!(&b.group, &h.group, "blocking vs submit+wait");
                prop_assert_eq!(d.stats.samples_drawn, b.stats.samples_drawn);
                prop_assert_eq!(b.stats.samples_drawn, h.stats.samples_drawn);
                prop_assert_eq!(b.stats.backtracks, h.stats.backtracks);
                prop_assert_eq!(h.stats.termination, waso::algos::Termination::Completed);
                prop_assert!(!h.stats.truncated);
            }
            (Err(_), Err(_), Err(_)) => {}
            _ => prop_assert!(
                false,
                "feasibility diverged: direct ok={}, blocking ok={}, handle ok={}",
                direct.is_ok(), blocking.is_ok(), handled.is_ok()
            ),
        }
    }

    /// The anytime contract under early termination: a cancelled or
    /// deadline-stopped solve returns a **valid feasible incumbent**
    /// tagged with the correct `Termination` reason, and a cancel
    /// observably stops sampling (strictly below budget on a long
    /// solve). Cancel-before-incumbent surfaces as the typed
    /// `NoIncumbent` error, never as a bogus "infeasible".
    #[test]
    fn early_termination_returns_a_valid_incumbent_with_the_right_reason(
        seed in 0u64..10_000,
        n in 16usize..40,
        extra in 0usize..30,
        k in 2usize..6,
        threads in 0usize..5,
        by_deadline: bool,
    ) {
        use waso::algos::{SolveError, Termination};

        let inst = random_instance(seed, n, extra, k, true);
        let graph = inst.graph().clone();
        // Long solve: many cheap stages, so the stop lands mid-run.
        let mut spec = SolverSpec::cbas_nd().budget(40_000).stages(80);
        if threads > 0 {
            spec = spec.threads(threads);
        }
        let expect = if by_deadline { Termination::Deadline } else { Termination::Cancelled };
        let session = WasoSession::new(graph).k(k).seed(seed);
        let outcome = if by_deadline {
            session.solve(&spec.deadline_ms(2))
        } else {
            let handle = session.submit(&spec).expect("spec is buildable");
            // Cancel the moment the first incumbent lands (or, rarely,
            // right after the job finished — both must be handled).
            let _ = handle.incumbents().next();
            handle.cancel();
            handle.wait()
        };
        match outcome {
            Ok(res) => {
                if res.stats.termination == Termination::Completed {
                    // The stop raced the solve's natural end and lost —
                    // legal, but then the budget must be fully spent.
                    prop_assert_eq!(res.stats.samples_drawn, 40_000);
                } else {
                    prop_assert_eq!(res.stats.termination, expect);
                    prop_assert!(res.stats.truncated);
                    prop_assert!(res.stats.samples_drawn < 40_000,
                        "stop must leave budget unspent (drew {})", res.stats.samples_drawn);
                }
                prop_assert!(res.group.validate(&inst).is_ok(), "incumbent must be feasible");
            }
            // Stopped before any incumbent existed — typed, not
            // mislabelled as infeasible.
            Err(SessionError::Solve(SolveError::NoIncumbent { reason })) => {
                prop_assert_eq!(reason, expect);
            }
            // The instance has a spanning path and n ≥ k: always
            // feasible, so "no feasible group" is never a correct answer
            // here — and neither is any other error.
            Err(e) => prop_assert!(false, "unexpected error: {}", e),
        }
    }

    #[test]
    fn branch_and_bound_is_never_beaten(
        seed in 0u64..10_000,
        n in 8usize..14,
        extra in 0usize..15,
        k in 2usize..5,
    ) {
        let inst = random_instance(seed, n, extra, k, true);
        let exact = BranchBound::new().solve(&inst, None);
        let brute = exhaustive_optimum(&inst);
        match (exact, brute) {
            (Some(a), Some(b)) => {
                prop_assert!((a.group.willingness() - b.willingness()).abs() < 1e-9);
                // No heuristic may exceed it.
                let heur = DGreedy::new().solve_seeded(&inst, 0);
                if let Ok(h) = heur {
                    prop_assert!(h.group.willingness() <= a.group.willingness() + 1e-9);
                }
            }
            (None, None) => {}
            other => prop_assert!(false, "feasibility mismatch {:?}", other.0.is_some()),
        }
    }

    #[test]
    fn lambda_interpolates_between_scenarios(
        seed in 0u64..10_000,
        n in 6usize..14,
        lambda in 0.0..1.0f64,
    ) {
        // W_λ(F) = λ·W_interest(F) + (1-λ)·W_tightness(F) for uniform λ.
        let inst = random_instance(seed, n, 10, 3, true);
        let g = inst.graph().clone();
        let nodes: Vec<NodeId> = (0..3).map(|i| NodeId(i as u32)).collect();

        let weighted = waso::core::instance::apply_lambda(&g, &vec![lambda; n]).unwrap();
        let interest_only = waso::core::instance::apply_lambda(&g, &vec![1.0; n]).unwrap();
        let tight_only = waso::core::instance::apply_lambda(&g, &vec![0.0; n]).unwrap();

        let w = waso::core::willingness(&weighted, &nodes);
        let wi = waso::core::willingness(&interest_only, &nodes);
        let wt = waso::core::willingness(&tight_only, &nodes);
        prop_assert!((w - (lambda * wi + (1.0 - lambda) * wt)).abs() < 1e-9);
    }

    #[test]
    fn group_willingness_is_permutation_invariant(
        seed in 0u64..10_000,
        n in 6usize..16,
    ) {
        let inst = random_instance(seed, n, 12, 4, false);
        let g = inst.graph();
        let forward: Vec<NodeId> = (0..4u32).map(NodeId).collect();
        let backward: Vec<NodeId> = (0..4u32).rev().map(NodeId).collect();
        // Summation order differs, so compare up to float associativity.
        let a = waso::core::willingness(g, &forward);
        let b = waso::core::willingness(g, &backward);
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }
}

/// A planted-partition instance with strong intra-community density and a
/// sprinkling of cross edges — the workload the decomposition solver is
/// built for.
fn clustered_instance(seed: u64, blocks: usize, size: usize, k: usize) -> WasoInstance {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = generate::planted_partition(blocks * size, blocks, 0.7, 0.02, &mut rng);
    let g = ScoreModel::paper_default().realize(&topo, &mut rng);
    WasoInstance::new(g, k).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The decomposition solver's determinism contract: a fixed
    /// `(spec, seed)` yields one answer — the serial no-pool composition
    /// and a shared-pool session are bit-identical at every pool width
    /// 1–8 — and every answer is feasible.
    #[test]
    fn decomp_is_bit_identical_across_pool_widths(
        seed in 0u64..10_000,
        blocks in 2usize..5,
        size in 6usize..13,
        k in 2usize..6,
        budget in 20u64..120,
    ) {
        use std::sync::Arc;
        use waso::algos::SharedPool;

        let inst = clustered_instance(seed, blocks, size, k);
        let graph = inst.graph().clone();
        let spec = SolverSpec::new("decomp")
            .budget(budget)
            .stages(2)
            .threads(2)
            .top(3);

        // Serial composition: no pool attached, communities solved in turn.
        let base = WasoSession::new(graph.clone()).k(k).seed(seed).solve(&spec);
        if let Ok(res) = &base {
            prop_assert!(res.group.validate(&inst).is_ok(), "infeasible decomp group");
        }
        for width in 1usize..=8 {
            let pool = Arc::new(SharedPool::new(width));
            let pooled = WasoSession::new(graph.clone())
                .k(k)
                .seed(seed)
                .attach_pool(pool)
                .solve(&spec);
            match (&base, &pooled) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.group, &b.group, "pool width {}", width);
                    prop_assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "feasibility diverged at pool width {}: serial ok={}, pooled ok={}",
                    width, base.is_ok(), pooled.is_ok()
                ),
            }
        }
    }

    /// Required attendees survive decomposition end to end: whether they
    /// land inside one community (decomposed path) or straddle a boundary
    /// (whole-graph fallback), the answer contains them or the solve
    /// fails loudly.
    #[test]
    fn decomp_honours_required_attendees(
        seed in 0u64..10_000,
        blocks in 2usize..4,
        size in 6usize..12,
        k in 3usize..6,
        pick in 0usize..1000,
    ) {
        let inst = clustered_instance(seed, blocks, size, k);
        let n = inst.graph().num_nodes();
        let a = NodeId((pick % n) as u32);
        let b = NodeId(((pick * 7 + 1) % n) as u32);
        let b = if a == b { NodeId((b.0 + 1) % n as u32) } else { b };
        let spec = SolverSpec::new("decomp").budget(60).stages(2).require([a, b]);
        let session = WasoSession::new(inst.graph().clone()).k(k).seed(seed);
        if let Ok(res) = session.solve(&spec) {
            prop_assert!(res.group.contains(a) && res.group.contains(b));
            prop_assert!(res.group.validate(&inst).is_ok());
        }
    }
}

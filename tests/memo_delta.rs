//! Memoization + incremental-delta contracts of [`WasoSession`]:
//!
//! * `apply(delta)` then solve ≡ rebuild-the-graph-from-scratch then
//!   solve — **bit-identical** nodes, willingness and sample counts,
//!   across random delta sequences and every pool width 1–8 (the
//!   incremental re-fingerprint and the CSR rebuild are both exact);
//! * a memo hit returns the original [`SolveResult`] bit-identically,
//!   in O(1) (no solver runs — pinned through the hit/miss counters);
//! * a delta invalidates **only** the cached entries whose group or
//!   one-hop frontier it touches; unaffected entries survive and still
//!   hit;
//! * an invalidated entry's group warm-starts the next matching solve,
//!   and a warm-started solve is a pure function of
//!   `(delta'd instance, spec, seed, incumbent)` — replayed histories
//!   agree bit-for-bit, at every pool width.

use proptest::collection;
use proptest::prelude::*;
use waso::prelude::*;
use waso_graph::{generate, GraphDelta, InterestModel, ScoreModel, TightnessModel};

/// A connected random graph: a spanning path plus `extra` random edges.
fn random_graph(seed: u64, n: usize, extra: usize) -> SocialGraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    edges.extend(generate::erdos_renyi_gnm(n, extra.min(n * (n - 1) / 2), &mut rng).edges);
    let topo = generate::GraphTopology::new(n, edges);
    let model = ScoreModel {
        interest: InterestModel::Uniform { lo: -0.5, hi: 1.5 },
        tightness: TightnessModel::Uniform { lo: -0.3, hi: 1.0 },
    };
    model.realize(&topo, &mut rng)
}

/// Turns an arbitrary "intent" tuple into a delta that is valid against
/// the *current* graph state, so random sequences always apply.
fn realize_delta(g: &SocialGraph, kind: u8, a: u32, b: u32, x: f64, y: f64) -> GraphDelta {
    let n = g.num_nodes() as u32;
    let u = NodeId(a % n);
    let mut v = NodeId(b % n);
    if v == u {
        v = NodeId((v.0 + 1) % n);
    }
    match kind % 4 {
        0 if !g.has_edge(u, v) => GraphDelta::AddEdge {
            u,
            v,
            tau_uv: x,
            tau_vu: y,
        },
        // Only drop an edge whose endpoints keep other neighbours, so
        // random sequences rarely strand the whole instance.
        1 if g.has_edge(u, v) && g.degree(u) > 1 && g.degree(v) > 1 => {
            GraphDelta::RemoveEdge { u, v }
        }
        2 => GraphDelta::SetInterest { v: u, interest: x },
        _ if g.has_edge(u, v) => GraphDelta::SetTightness {
            u,
            v,
            tau_uv: x,
            tau_vu: y,
        },
        _ => GraphDelta::SetInterest { v: u, interest: x },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole equivalence: a session mutated by `apply(delta)` and
    /// a fresh session over a from-scratch graph carrying the same edits
    /// solve bit-identically, across delta sequences and pool widths.
    #[test]
    fn delta_solves_match_rebuilt_graphs(
        seed in 0u64..500,
        intents in collection::vec(
            (0u8..4, any::<u32>(), any::<u32>(), -0.5..1.5f64, -0.3..1.0f64),
            1..6,
        ),
        threads in 1usize..=8,
    ) {
        let base = random_graph(seed, 16, 12);
        let mut session = WasoSession::new(base.clone()).k(4).seed(seed);
        let mut rebuilt = base;
        for (kind, a, b, x, y) in intents {
            let delta = realize_delta(&rebuilt, kind, a, b, x, y);
            rebuilt = delta.apply(&rebuilt).unwrap();
            session.apply(&delta).unwrap();
        }
        // The delta'd CSR is bit-exactly the rebuilt one.
        prop_assert_eq!(
            waso::graph::io::to_string(session.graph()),
            waso::graph::io::to_string(&rebuilt)
        );

        let fresh = WasoSession::new(rebuilt).k(4).seed(seed);
        let spec = format!("cbas-nd-par:budget=200,stages=3,threads={threads}");
        match (session.solve_str(&spec), fresh.solve_str(&spec)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.group.nodes(), b.group.nodes());
                prop_assert_eq!(
                    a.group.willingness().to_bits(),
                    b.group.willingness().to_bits()
                );
                prop_assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);

                // And the post-delta fingerprint keys a working memo: a
                // repeat solve is a hit that replays the result exactly.
                let again = session.solve_str(&spec).unwrap();
                prop_assert_eq!(again.group.nodes(), a.group.nodes());
                prop_assert_eq!(again.stats.samples_drawn, a.stats.samples_drawn);
                prop_assert_eq!(session.memo_stats().hits, 1);
            }
            // A savage delta sequence can strand the instance; both
            // paths must agree on that too.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "divergent feasibility: applied={:?} rebuilt={:?}",
                a.map(|r| r.group.willingness()),
                b.map(|r| r.group.willingness())
            ),
        }
    }

    /// Warm-started solves are a pure function of
    /// `(delta'd instance, spec, seed, incumbent)`: replaying the same
    /// solve → delta → solve history gives the same bits at every pool
    /// width.
    #[test]
    fn warm_started_replays_agree(
        seed in 0u64..500,
        threads_a in 1usize..=8,
        threads_b in 1usize..=8,
    ) {
        let base = random_graph(seed, 16, 12);
        let replay = |threads: usize| {
            let mut session = WasoSession::new(base.clone()).k(4).seed(seed);
            let spec = format!("cbas-nd-par:budget=200,stages=3,threads={threads}");
            let first = session.solve_str(&spec).unwrap();
            // Touch the incumbent group directly: guaranteed invalidation.
            let v = first.group.nodes()[0];
            session
                .apply(&GraphDelta::SetInterest { v, interest: 2.0 })
                .unwrap();
            assert_eq!(session.memo_stats().invalidated, 1);
            let warm = session.solve_str(&spec).unwrap();
            (warm.group.nodes().to_vec(), warm.group.willingness().to_bits())
        };
        prop_assert_eq!(replay(threads_a), replay(threads_b));
    }
}

#[test]
fn memo_hits_are_bit_identical_and_counted() {
    let session = WasoSession::new(random_graph(3, 20, 15)).k(4).seed(7);
    let spec = "cbas-nd:budget=300,stages=4";
    let first = session.solve_str(spec).unwrap();
    let second = session.solve_str(spec).unwrap();
    assert_eq!(second.group.nodes(), first.group.nodes());
    assert_eq!(
        second.group.willingness().to_bits(),
        first.group.willingness().to_bits()
    );
    assert_eq!(second.stats.samples_drawn, first.stats.samples_drawn);
    assert_eq!(second.stats.stages, first.stats.stages);

    let stats = session.memo_stats();
    assert_eq!((stats.hits, stats.misses, stats.invalidated), (1, 1, 0));

    // A different spec, seed, or constraint set is a different key.
    session.solve_str("cbas-nd:budget=300,stages=5").unwrap();
    let stats = session.memo_stats();
    assert_eq!((stats.hits, stats.misses), (1, 2));
}

#[test]
fn wall_clock_bounded_specs_bypass_the_memo() {
    let session = WasoSession::new(random_graph(4, 20, 15)).k(4).seed(7);
    let spec = "cbas-nd:budget=200,stages=3,deadline_ms=60000";
    session.solve_str(spec).unwrap();
    session.solve_str(spec).unwrap();
    let stats = session.memo_stats();
    assert_eq!((stats.hits, stats.misses), (0, 0));
}

/// Two cliques with no edges between them: entries anchored in one are
/// provably outside the other's one-hop frontier.
fn two_cliques() -> SocialGraph {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = (0..8).map(|i| b.add_node(4.0 + i as f64)).collect();
    for half in [&ids[..4], &ids[4..]] {
        for (i, &u) in half.iter().enumerate() {
            for &v in &half[i + 1..] {
                b.add_edge_symmetric(u, v, 1.0).unwrap();
            }
        }
    }
    b.build()
}

#[test]
fn deltas_invalidate_only_touched_entries() {
    let session = WasoSession::new(two_cliques()).k(3).seed(9);
    let in_a = "cbas-nd:budget=150,stages=3,require=0";
    let in_b = "cbas-nd:budget=150,stages=3,require=4";
    let first_a = session.solve_str(in_a).unwrap();
    let first_b = session.solve_str(in_b).unwrap();
    assert!(first_a.group.contains(NodeId(0)));
    assert!(first_b.group.contains(NodeId(4)));

    // Weaken an edge inside entry A's winning group: entry A dies,
    // entry B (whole clique outside the delta's frontier) survives —
    // re-keyed to the new fingerprint.
    let (u, v) = (first_a.group.nodes()[0], first_a.group.nodes()[1]);
    let mut session = session;
    session
        .apply(&GraphDelta::SetTightness {
            u,
            v,
            tau_uv: 0.25,
            tau_vu: 0.25,
        })
        .unwrap();
    assert_eq!(session.memo_stats().invalidated, 1);

    // Survivor still hits, bit-identically.
    let again_b = session.solve_str(in_b).unwrap();
    assert_eq!(again_b.group.nodes(), first_b.group.nodes());
    assert_eq!(
        again_b.group.willingness().to_bits(),
        first_b.group.willingness().to_bits()
    );
    assert_eq!(session.memo_stats().hits, 1);

    // The invalidated side re-solves (a miss), and its willingness is
    // computed on the *delta'd* graph — never the stale cached value.
    let again_a = session.solve_str(in_a).unwrap();
    assert_eq!(session.memo_stats().hits, 1);
    let recomputed =
        Group::new(&session.instance().unwrap(), again_a.group.nodes().to_vec()).unwrap();
    assert_eq!(
        again_a.group.willingness().to_bits(),
        recomputed.willingness().to_bits()
    );
    assert!(again_a.group.willingness() < first_a.group.willingness());
}

/// The satellite regression: solve → delta touching the group → solve
/// must never serve the pre-delta result, under any submission path.
#[test]
fn replan_after_delta_never_serves_a_stale_group() {
    let mut session = WasoSession::new(two_cliques()).k(3).seed(11);
    let spec = "cbas-nd:budget=150,stages=3";
    let before = session.solve_str(spec).unwrap();

    // Weaken an edge inside the winning group.
    let (u, v) = (before.group.nodes()[0], before.group.nodes()[1]);
    session
        .apply(&GraphDelta::SetTightness {
            u,
            v,
            tau_uv: 0.1,
            tau_vu: 0.1,
        })
        .unwrap();

    // The handle path and the blocking path agree, and both re-solve.
    let after = session
        .submit(&session.registry().parse(spec).unwrap())
        .unwrap();
    let after = after.wait().unwrap();
    let recomputed =
        Group::new(&session.instance().unwrap(), after.group.nodes().to_vec()).unwrap();
    assert_eq!(
        after.group.willingness().to_bits(),
        recomputed.willingness().to_bits()
    );
    assert_ne!(
        after.group.willingness().to_bits(),
        before.group.willingness().to_bits(),
        "delta'd solve replayed the stale cached willingness"
    );
    assert_eq!(session.memo_stats().invalidated, 1);
}

#[test]
fn rejected_deltas_change_nothing() {
    let mut session = WasoSession::new(two_cliques()).k(3).seed(5);
    let spec = "cbas-nd:budget=150,stages=3";
    let before = session.solve_str(spec).unwrap();
    let bad = GraphDelta::AddEdge {
        u: NodeId(0),
        v: NodeId(1), // already an edge
        tau_uv: 1.0,
        tau_vu: 1.0,
    };
    assert!(matches!(session.apply(&bad), Err(SessionError::Delta(_))));
    // Graph untouched, memo untouched: the repeat solve is a pure hit.
    let again = session.solve_str(spec).unwrap();
    assert_eq!(again.group.nodes(), before.group.nodes());
    let stats = session.memo_stats();
    assert_eq!((stats.hits, stats.invalidated), (1, 0));
}

//! The job-handle (anytime serving) surface: submit/poll/cancel,
//! deadlines, patience, incumbent streaming — and every cancellation
//! edge case a serving deployment hits.

use std::sync::Arc;

use waso::prelude::*;
use waso_graph::NodeId;

fn graph(n: usize) -> SocialGraph {
    waso_datasets::synthetic::facebook_like_n(n, 3)
}

/// A solve long enough that control actions land mid-run: many cheap
/// stages, so stage boundaries (where cancels/deadlines take effect) come
/// around every few hundred microseconds.
fn long_spec() -> SolverSpec {
    SolverSpec::cbas_nd().budget(60_000).stages(100)
}

fn quick_spec() -> SolverSpec {
    SolverSpec::cbas_nd().budget(60).stages(3)
}

#[test]
fn submit_wait_matches_blocking_solve_exactly() {
    let g = graph(80);
    let spec = SolverSpec::cbas_nd().budget(80).stages(4).threads(2);
    let blocking = WasoSession::new(g.clone())
        .k(5)
        .seed(3)
        .solve(&spec)
        .unwrap();
    let session = WasoSession::new(g).k(5).seed(3);
    let handle = session.submit(&spec).unwrap();
    let handled = handle.wait().unwrap();
    assert_eq!(handled.group, blocking.group);
    assert_eq!(handled.stats.samples_drawn, blocking.stats.samples_drawn);
    assert_eq!(handled.stats.termination, Termination::Completed);
    assert!(!handled.stats.truncated);
}

#[test]
fn try_result_polls_and_composes_with_wait() {
    let session = WasoSession::new(graph(80)).k(5).seed(1);
    let mut handle = session.submit(&long_spec()).unwrap();
    // Poll a few times; whether we catch it mid-run or finished, the
    // eventual result must be there and repeatable.
    let early = handle.try_result();
    let waited = handle.wait().unwrap();
    if let Some(early) = early {
        assert_eq!(early.unwrap().group, waited.group);
    }
    assert_eq!(waited.stats.samples_drawn, 60_000);
}

#[test]
fn progress_and_incumbents_stream_while_solving() {
    let session = WasoSession::new(graph(80)).k(5).seed(2);
    let handle = session.submit(&long_spec()).unwrap();
    // The incumbent stream is strictly improving and ends at the answer.
    let incumbents: Vec<Incumbent> = handle.incumbents().collect();
    assert!(!incumbents.is_empty());
    for pair in incumbents.windows(2) {
        assert!(pair[1].willingness > pair[0].willingness);
    }
    let progress = handle.progress();
    assert!(progress.finished);
    assert_eq!(progress.stages_done, 100);
    let result = handle.wait().unwrap();
    let last = incumbents.last().unwrap();
    assert!((last.willingness - result.group.willingness()).abs() < 1e-9);
    let mut nodes = last.nodes.clone();
    nodes.sort_unstable();
    assert_eq!(nodes.as_slice(), result.group.nodes());
}

#[test]
fn cancel_before_the_first_stage_reports_no_incumbent() {
    // A width-1 batch serializes the two jobs: the second is cancelled
    // while still queued behind the first, so its cancel deterministically
    // precedes its first stage.
    let session = WasoSession::new(graph(80)).k(5).seed(4).batch_width(1);
    let mut handles = session.submit_batch(&[long_spec(), quick_spec()]).unwrap();
    let queued = handles.pop().unwrap();
    queued.cancel();
    let first = handles.pop().unwrap();
    assert_eq!(
        queued.wait().unwrap_err(),
        SessionError::Solve(SolveError::NoIncumbent {
            reason: Termination::Cancelled
        })
    );
    // The job ahead of it is untouched.
    let ok = first.wait().unwrap();
    assert_eq!(ok.stats.samples_drawn, 60_000);
    assert_eq!(ok.stats.termination, Termination::Completed);
}

#[test]
fn cancel_mid_solve_returns_the_best_so_far_and_stops_sampling() {
    let session = WasoSession::new(graph(80)).k(5).seed(5);
    let handle = session.submit(&long_spec()).unwrap();
    // Wait for the first incumbent, then cancel: the result is a valid
    // feasible group, tagged Cancelled, with the budget provably unspent.
    let first = handle.incumbents().next().expect("an incumbent arrives");
    handle.cancel();
    let result = handle.wait().unwrap();
    assert_eq!(result.stats.termination, Termination::Cancelled);
    assert!(result.stats.truncated);
    assert!(
        result.stats.samples_drawn < 60_000,
        "cancel() must observably stop sampling (drew {})",
        result.stats.samples_drawn
    );
    assert!(result.group.willingness() >= first.willingness);
    let instance = session.instance().unwrap();
    result
        .group
        .validate(&instance)
        .expect("feasible incumbent");
}

#[test]
fn cancel_mid_batch_leaves_the_other_jobs_untouched() {
    let g = graph(80);
    let specs = vec![quick_spec(), long_spec(), quick_spec().threads(2)];
    // Per-spec baselines from fresh sessions.
    let baselines: Vec<_> = specs
        .iter()
        .map(|s| WasoSession::new(g.clone()).k(5).seed(6).solve(s).unwrap())
        .collect();
    let session = WasoSession::new(g).k(5).seed(6);
    let mut handles = session.submit_batch(&specs).unwrap();
    // Cancel the long middle job; its neighbours must come back
    // bit-identical to their solo baselines.
    handles[1].cancel();
    let last = handles.pop().unwrap().wait().unwrap();
    let middle = handles.pop().unwrap().wait();
    let first = handles.pop().unwrap().wait().unwrap();
    assert_eq!(first.group, baselines[0].group);
    assert_eq!(first.stats.samples_drawn, baselines[0].stats.samples_drawn);
    assert_eq!(last.group, baselines[2].group);
    assert_eq!(last.stats.samples_drawn, baselines[2].stats.samples_drawn);
    match middle {
        Ok(res) => {
            assert_eq!(res.stats.termination, Termination::Cancelled);
            assert!(res.stats.samples_drawn < 60_000);
        }
        Err(SessionError::Solve(SolveError::NoIncumbent {
            reason: Termination::Cancelled,
        })) => {} // cancelled before its first stage completed
        other => panic!("unexpected middle outcome: {other:?}"),
    }
}

#[test]
fn deadline_of_zero_returns_the_typed_error_not_infeasibility() {
    let session = WasoSession::new(graph(80)).k(5).seed(7);
    for spec in [
        quick_spec().deadline_ms(0),
        quick_spec().threads(2).deadline_ms(0),
    ] {
        let err = session.solve(&spec).unwrap_err();
        assert_eq!(
            err,
            SessionError::Solve(SolveError::NoIncumbent {
                reason: Termination::Deadline
            }),
            "{spec}"
        );
    }
    // The same session still solves normally afterwards.
    assert!(session.solve(&quick_spec()).is_ok());
}

#[test]
fn short_deadline_returns_a_feasible_incumbent_tagged_deadline() {
    let session = WasoSession::new(graph(120)).k(6).seed(8);
    // A deadline that trips mid-run: enough for some stages of a huge
    // budget, nowhere near all of them. Deadlines are checked per
    // *chunk*, so on a loaded box a short one can legally stop the
    // solve before its first stage completes — that's the typed
    // NoIncumbent, pinned elsewhere; here we escalate until the solve
    // gets far enough to have an incumbent when the deadline lands.
    let mut deadline_ms = 50;
    let result = loop {
        let spec = SolverSpec::cbas_nd()
            .budget(5_000_000)
            .stages(2000)
            .deadline_ms(deadline_ms);
        match session.solve(&spec) {
            Ok(result) => break result,
            Err(SessionError::Solve(SolveError::NoIncumbent {
                reason: Termination::Deadline,
            })) if deadline_ms < 1_000 => deadline_ms *= 2,
            Err(e) => panic!("unexpected solve error: {e}"),
        }
    };
    assert_eq!(result.stats.termination, Termination::Deadline);
    assert!(result.stats.truncated);
    assert!(result.stats.samples_drawn < 5_000_000);
    let instance = session.instance().unwrap();
    result
        .group
        .validate(&instance)
        .expect("feasible incumbent");
}

#[test]
fn patience_stops_a_converged_solve_early() {
    // A tiny graph converges immediately; patience cuts the tail off.
    let session = WasoSession::new(graph(30)).k(3).seed(9);
    let spec = SolverSpec::cbas_nd().budget(20_000).stages(100).patience(3);
    let res = session.solve(&spec).unwrap();
    assert_eq!(res.stats.termination, Termination::Completed);
    assert!(res.stats.truncated, "patience stop is a truncation");
    assert!(res.stats.stages < 100);
    assert!(res.stats.samples_drawn < 20_000);
    // Same answer as the full run (nothing was improving).
    let full = session
        .solve(&SolverSpec::cbas_nd().budget(20_000).stages(100))
        .unwrap();
    assert_eq!(res.group, full.group);
}

#[test]
fn dropping_a_handle_cancels_its_job_and_the_pool_stays_usable() {
    let pool = Arc::new(SharedPool::new(2));
    let g = graph(80);
    let session = WasoSession::new(g.clone())
        .k(5)
        .seed(10)
        .attach_pool(Arc::clone(&pool));
    {
        let handle = session.submit(&long_spec().threads(2)).unwrap();
        let _ = handle.progress();
        // Dropped without waiting: the job is cancelled and its thread
        // winds down on its own — no join, no leak, no poisoned pool.
    }
    // The pool keeps serving this session (and matches a fresh one).
    let spec = quick_spec().threads(2);
    let served = session.solve(&spec).unwrap();
    let fresh = WasoSession::new(g).k(5).seed(10).solve(&spec).unwrap();
    assert_eq!(served.group, fresh.group);
    assert_eq!(pool.respawned_workers(), 0);
}

#[test]
fn cancel_races_a_worker_respawn_without_wedging_the_pool() {
    // Arm a worker panic, submit a pooled job, cancel it mid-heal: the
    // pool must respawn the worker, never hang, and serve the next solve
    // bit-identically.
    let g = graph(80);
    let spec = long_spec().threads(2);
    for slot in 0..2 {
        let pool = Arc::new(SharedPool::new(2));
        let session = WasoSession::new(g.clone())
            .k(5)
            .seed(11)
            .attach_pool(Arc::clone(&pool));
        pool.inject_worker_panic(slot, 1);
        let handle = session.submit(&spec).unwrap();
        // Let the solve reach (and heal through) the armed stage, then
        // cancel while the respawn dust may still be settling.
        let _ = handle.incumbents().take(2).count();
        handle.cancel();
        match handle.wait() {
            Ok(res) => assert!(res.stats.samples_drawn <= 60_000),
            Err(SessionError::Solve(SolveError::NoIncumbent { .. })) => {}
            Err(other) => panic!("slot {slot}: unexpected error {other}"),
        }
        // The healed pool serves the next (fresh-session-identical) solve.
        let after = session.solve(&quick_spec().threads(2)).unwrap();
        let fresh = WasoSession::new(g.clone())
            .k(5)
            .seed(11)
            .solve(&quick_spec().threads(2))
            .unwrap();
        assert_eq!(after.group, fresh.group, "slot={slot}");
        assert_eq!(pool.respawned_workers(), 1, "slot={slot}");
    }
}

#[test]
fn batch_width_is_configurable_and_invisible_in_results() {
    let g = graph(60);
    let specs = vec![
        quick_spec(),
        quick_spec().threads(2),
        SolverSpec::dgreedy(),
        quick_spec().require([NodeId(0)]),
    ];
    let baseline = WasoSession::new(g.clone())
        .k(4)
        .seed(12)
        .solve_batch(&specs)
        .unwrap();
    for width in [1usize, 2, 8] {
        let batch = WasoSession::new(g.clone())
            .k(4)
            .seed(12)
            .batch_width(width)
            .solve_batch(&specs)
            .unwrap();
        for ((spec, a), b) in specs.iter().zip(&baseline).zip(&batch) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.group, b.group, "width={width} {spec}");
            assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
        }
    }
    // batch_width(0) clamps to 1 instead of deadlocking.
    let clamped = WasoSession::new(g)
        .k(4)
        .seed(12)
        .batch_width(0)
        .solve_batch(&specs)
        .unwrap();
    assert!(clamped.iter().all(|r| r.is_ok()));
}

#[test]
fn handle_pool_stats_expose_session_pool_health() {
    let session = WasoSession::new(graph(60)).k(4).seed(13);
    assert!(
        session.pool_stats().is_none(),
        "no pool before a pooled solve"
    );
    session.solve(&quick_spec().threads(2)).unwrap();
    let stats = session.pool_stats().expect("pool spawned by the solve");
    assert_eq!(stats.threads, 2);
    assert_eq!(stats.active_jobs, 0);
    assert!(
        stats
            .workers
            .iter()
            .map(|w| w.chunks_processed)
            .sum::<u64>()
            > 0
    );
}

#[test]
fn non_staged_solvers_honour_pre_start_cancellation() {
    // dgreedy/exact run through the default solve_controlled: a cancel
    // that precedes the solve is honoured; one that arrives later is a
    // no-op on an already-finished job.
    let session = WasoSession::new(graph(30)).k(3).seed(14).batch_width(1);
    let mut handles = session
        .submit_batch(&[long_spec(), SolverSpec::dgreedy()])
        .unwrap();
    let greedy = handles.pop().unwrap();
    greedy.cancel(); // still queued behind the long job
    assert_eq!(
        greedy.wait().unwrap_err(),
        SessionError::Solve(SolveError::NoIncumbent {
            reason: Termination::Cancelled
        })
    );
    drop(handles);
}

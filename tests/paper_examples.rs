//! Cross-crate tests pinning the reproduction to the paper's worked
//! examples (Figure 1 and the Example 1/2 arithmetic).

use waso::prelude::*;
use waso_exact::{exhaustive_optimum, BranchBound, IpModel};

/// The Figure-1 counterexample reconstructed from §1's narrative: path
/// v1 -1- v2 -2- v3 -4- v4 with η = (8, 7, 6, 5), k = 3.
fn figure1() -> WasoInstance {
    let mut b = GraphBuilder::new();
    let v1 = b.add_node(8.0);
    let v2 = b.add_node(7.0);
    let v3 = b.add_node(6.0);
    let v4 = b.add_node(5.0);
    b.add_edge_symmetric(v1, v2, 1.0).unwrap();
    b.add_edge_symmetric(v2, v3, 2.0).unwrap();
    b.add_edge_symmetric(v3, v4, 4.0).unwrap();
    WasoInstance::new(b.build(), 3).unwrap()
}

#[test]
fn every_component_agrees_on_figure_one() {
    let inst = figure1();

    // Greedy is trapped at 27 (the paper's motivating observation).
    let greedy = DGreedy::new().solve_seeded(&inst, 0).unwrap();
    assert_eq!(greedy.group.willingness(), 27.0);

    // Both exact solvers and the IP model agree the optimum is 30.
    let brute = exhaustive_optimum(&inst).unwrap();
    let bb = BranchBound::new().solve(&inst, None).unwrap();
    let ip = IpModel::build(&inst).solve(None).unwrap();
    assert_eq!(brute.willingness(), 30.0);
    assert_eq!(bb.group.willingness(), 30.0);
    assert_eq!(ip.group.willingness(), 30.0);
    assert_eq!(brute.nodes(), bb.group.nodes());

    // Every randomized solver escapes the trap with a modest budget.
    let cbas = Cbas::new(CbasConfig::fast())
        .solve_seeded(&inst, 1)
        .unwrap();
    assert_eq!(cbas.group.willingness(), 30.0, "CBAS");
    let nd = CbasNd::new(CbasNdConfig::fast())
        .solve_seeded(&inst, 1)
        .unwrap();
    assert_eq!(nd.group.willingness(), 30.0, "CBAS-ND");
    let rg = RGreedy::new(RGreedyConfig::with_budget(60))
        .solve_seeded(&inst, 1)
        .unwrap();
    assert_eq!(rg.group.willingness(), 30.0, "RGreedy");
}

#[test]
fn willingness_counts_both_directions() {
    // §2.1: τ_{i,j} and τ_{j,i} are both counted; asymmetric example.
    let mut b = GraphBuilder::new();
    let u = b.add_node(1.0);
    let v = b.add_node(2.0);
    b.add_edge(u, v, 0.3, 0.7).unwrap();
    let g = b.build();
    assert_eq!(waso::core::willingness(&g, &[u, v]), 4.0);
}

#[test]
fn example_one_start_node_scores() {
    // Example 1 scores a node as η + Σ incident τ (each edge counted once):
    // reproduce the arithmetic shape on a 3-node path.
    let mut b = GraphBuilder::new();
    let a = b.add_node(0.8);
    let c = b.add_node(0.1);
    let d = b.add_node(0.4);
    b.add_edge_symmetric(a, c, 0.6).unwrap();
    b.add_edge_symmetric(c, d, 0.9).unwrap();
    let g = b.build();
    assert!((g.start_node_score(a) - 1.4).abs() < 1e-12);
    assert!((g.start_node_score(c) - 1.6).abs() < 1e-12);
    assert!((g.start_node_score(d) - 1.3).abs() < 1e-12);
}

#[test]
fn theorem_five_quality_bound_holds_empirically() {
    // E[Q]/Q* ≥ N_b (1/(N_b+1))^{(N_b+1)/N_b} with scores normalized to the
    // incumbent's sample range. We check the weaker, testable implication:
    // CBAS's solution is within the bound of the optimum on a small graph
    // once the budget is moderate.
    let inst = figure1();
    let opt = 30.0;
    let budget = 40u64;
    let mut total = 0.0;
    let runs = 10;
    for seed in 0..runs {
        let mut cfg = CbasConfig::with_budget(budget);
        cfg.stages = Some(4);
        let got = Cbas::new(cfg).solve_seeded(&inst, seed).unwrap();
        total += got.group.willingness();
    }
    let mean = total / runs as f64;
    // N_b ≈ (4 + m(r-1))/(4rm) · T with m = 2, r = 4 → 10/32·40 = 12.5.
    let n_b = waso::algos::theory::incumbent_budget_after_stages(2, 4, budget);
    let bound = waso::algos::theory::expected_quality_ratio(n_b);
    // The theorem normalizes to [c_b, d_b]; our unnormalized check uses the
    // conservative form mean ≥ bound · opt · (c_b/d_b slack) — on this tiny
    // instance CBAS hits the optimum almost always, so the check is strong.
    assert!(
        mean >= bound * opt * 0.8,
        "mean {mean:.2} vs bound {:.2}",
        bound * opt
    );
}

//! Integration tests of the unified solver API: registry completeness,
//! spec string round-trips, and uniform constraint enforcement.

use waso::prelude::*;

/// The crate-docs quickstart graph: a–c–d path, k = 2, optimum {a, c}
/// with W = 0.8 + 0.5 + 2·0.7 = 2.7.
fn quickstart_graph() -> SocialGraph {
    let mut b = GraphBuilder::new();
    let a = b.add_node(0.8);
    let c = b.add_node(0.5);
    let d = b.add_node(0.9);
    b.add_edge_symmetric(a, c, 0.7).unwrap();
    b.add_edge_symmetric(c, d, 0.4).unwrap();
    b.build()
}

/// A workable spec for any registry entry at test-sized budgets.
fn test_spec(entry: &waso_algos::RegistryEntry) -> SolverSpec {
    let mut spec = SolverSpec::new(entry.name);
    if entry.options.contains(&"budget") {
        spec = spec.budget(120);
    }
    if entry.options.contains(&"stages") {
        spec = spec.stages(3);
    }
    if entry.options.contains(&"cap") {
        // Keep the exact solver anytime-sized on the larger test graphs.
        spec = spec.cap(200_000);
    }
    spec
}

#[test]
fn registry_is_complete_every_spec_solves_the_quickstart_graph() {
    let registry = waso::registry();
    // The full family is registered: the four roster solvers, both
    // CBAS-ND variants, the parallel driver, and the exact solver.
    let names = registry.names();
    for expected in [
        "dgreedy",
        "rgreedy",
        "cbas",
        "cbas-nd",
        "cbas-nd-g",
        "cbas-nd-par",
        "decomp",
        "exact",
    ] {
        assert!(names.contains(&expected), "{expected} not registered");
    }

    let session = WasoSession::new(quickstart_graph()).k(2);
    for entry in registry.entries() {
        let res = session
            .solve(&test_spec(entry))
            .unwrap_or_else(|e| panic!("{} failed the quickstart: {e}", entry.name));
        assert_eq!(res.group.len(), 2, "{}", entry.name);
        // Sampling and exact solvers all find the optimum on a graph this
        // small; plain greedy may not (that miss is the paper's §1
        // motivating example), so it is only held to feasibility.
        if entry.capabilities.randomized || entry.capabilities.exact {
            assert!(
                (res.group.willingness() - 2.7).abs() < 1e-9,
                "{} returned {} instead of the optimum 2.7",
                entry.name,
                res.group.willingness()
            );
        }
    }
}

#[test]
fn every_registered_spec_is_deterministic_for_a_fixed_seed() {
    let registry = waso::registry();
    let graph = waso::datasets::synthetic::facebook_like_n(150, 11);
    let session = WasoSession::new(graph).k(6).seed(123);
    for entry in registry.entries() {
        let spec = test_spec(entry);
        let a = session
            .solve(&spec)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let b = session
            .solve(&spec)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(
            a.group, b.group,
            "{} is not deterministic for a fixed seed",
            entry.name
        );
        assert_eq!(
            a.stats.samples_drawn, b.stats.samples_drawn,
            "{}",
            entry.name
        );
    }
}

#[test]
fn spec_strings_round_trip_through_parse_and_display() {
    let registry = waso::registry();
    let specs = [
        "dgreedy",
        "dgreedy:starts=3",
        "rgreedy:budget=500",
        "cbas:budget=1000,stages=5,start-nodes=32",
        "cbas-nd:budget=2000,stages=10,rho=0.3,smoothing=0.9",
        "cbas-nd:threads=8,backtrack=0.05",
        "cbas-nd-g:budget=250",
        "cbas-nd-par:budget=400,threads=4",
        "cbas-nd:require=1+2+5",
        "exact:cap=1000000",
        "decomp:inner=cbas-nd,communities=auto,top=4",
        "decomp:budget=800,threads=2,communities=8",
    ];
    for text in specs {
        let spec = registry.parse(text).expect(text);
        let reparsed = registry.parse(&spec.to_string()).expect(text);
        assert_eq!(spec, reparsed, "round-trip changed '{text}'");
        // And the canonical string is stable (fixed point).
        assert_eq!(spec.to_string(), reparsed.to_string());
    }
}

#[test]
fn aliases_canonicalize_to_the_same_solver() {
    let registry = waso::registry();
    for (alias, canonical) in [
        ("greedy", "dgreedy"),
        ("cbasnd", "cbas-nd"),
        ("gaussian", "cbas-nd-g"),
        ("parallel", "cbas-nd-par"),
        ("ip", "exact"),
        ("bb", "exact"),
    ] {
        assert_eq!(
            registry.parse(alias).unwrap().algorithm(),
            canonical,
            "{alias}"
        );
    }
}

#[test]
fn required_attendee_specs_are_rejected_by_incapable_solvers() {
    let registry = waso::registry();
    let session = WasoSession::new(quickstart_graph())
        .k(2)
        .require([NodeId(2)]);

    let mut honoured = 0;
    let mut rejected = 0;
    for entry in registry.entries() {
        let outcome = session.solve(&test_spec(entry));
        if entry.capabilities.required_attendees {
            let res = outcome.unwrap_or_else(|e| panic!("{} should honour: {e}", entry.name));
            assert!(
                res.group.contains(NodeId(2)),
                "{} dropped the required attendee",
                entry.name
            );
            honoured += 1;
        } else {
            assert_eq!(
                outcome.unwrap_err(),
                SessionError::Solve(SolveError::RequiredUnsupported { solver: entry.name }),
                "{} must reject, not ignore",
                entry.name
            );
            rejected += 1;
        }
    }
    // Both behaviours are actually exercised.
    assert!(
        honoured >= 4,
        "dgreedy, cbas-nd, cbas-nd-g, cbas-nd-par honour"
    );
    assert!(rejected >= 3, "cbas, rgreedy, exact reject");
}

#[test]
fn dgreedy_honours_one_required_attendee_but_rejects_two() {
    let session = WasoSession::new(quickstart_graph()).k(2);
    let one = session
        .registry()
        .parse("dgreedy:starts=2")
        .and_then(|_| session.registry().parse("dgreedy"))
        .unwrap();
    let res = WasoSession::new(quickstart_graph())
        .k(2)
        .require([NodeId(2)])
        .solve(&one)
        .unwrap();
    assert!(res.group.contains(NodeId(2)));

    let err = WasoSession::new(quickstart_graph())
        .k(2)
        .require([NodeId(0), NodeId(2)])
        .solve_str("dgreedy")
        .unwrap_err();
    assert_eq!(
        err,
        SessionError::Solve(SolveError::RequiredUnsupported { solver: "dgreedy" })
    );
}

#[test]
fn solve_errors_are_eq_and_results_display() {
    // `Eq` on SolveError (satellite): usable in match tables and sets.
    let e1 = SolveError::NoFeasibleGroup;
    let e2 = SolveError::NoFeasibleGroup;
    assert_eq!(e1, e2);
    let set: std::collections::BTreeMap<String, SolveError> =
        [("a".to_string(), e1)].into_iter().collect();
    assert_eq!(set["a"], e2);

    // `Display` on SolveResult (satellite): group + willingness + stats
    // one-liner, so CLIs and examples stop formatting by hand.
    let res = WasoSession::new(quickstart_graph())
        .k(2)
        .solve_str("cbas:budget=60,stages=2")
        .unwrap();
    let text = res.to_string();
    assert!(text.contains("willingness"), "{text}");
    assert!(text.contains("samples"), "{text}");
    assert!(text.contains("stages"), "{text}");
}

#[test]
fn parallel_spec_is_bit_identical_to_serial_through_the_session() {
    let graph = waso::datasets::synthetic::facebook_like_n(200, 4);
    let session = WasoSession::new(graph).k(8).seed(9);
    let serial = session.solve_str("cbas-nd:budget=160,stages=4").unwrap();
    for threads in [1usize, 2, 4] {
        let par = session
            .solve_str(&format!("cbas-nd:budget=160,stages=4,threads={threads}"))
            .unwrap();
        assert_eq!(par.group, serial.group, "threads={threads}");
    }
}

#[test]
fn sessions_reject_unknown_options_and_algorithms() {
    let session = WasoSession::new(quickstart_graph()).k(2);
    assert!(matches!(
        session.solve_str("cbas-nd:warp=9"),
        Err(SessionError::Spec(SpecError::UnknownOption(_)))
    ));
    assert!(matches!(
        session.solve_str("dgreedy:budget=5"),
        Err(SessionError::Spec(SpecError::UnsupportedOption { .. }))
    ));
    assert!(matches!(
        session.solve_str("annealing"),
        Err(SessionError::Spec(SpecError::UnknownAlgorithm { .. }))
    ));
}

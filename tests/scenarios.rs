//! Integration tests for every §2.2 scenario, end to end: transformation →
//! solve → interpretation in the original graph's terms.

use waso::core::scenario;
use waso::prelude::*;
use waso_exact::{exhaustive_optimum, BranchBound};
use waso_graph::traversal;

/// A two-community playground: a tight clique (0-3) and a looser star
/// (4-8) joined by one bridge.
fn playground() -> SocialGraph {
    let mut b = GraphBuilder::new();
    let interests = [0.2, 0.3, 0.1, 0.4, 0.9, 0.8, 0.7, 0.6, 0.5];
    let ids: Vec<NodeId> = interests.iter().map(|&x| b.add_node(x)).collect();
    // Clique on 0..4 with strong ties.
    for u in 0..4 {
        for v in (u + 1)..4 {
            b.add_edge_symmetric(ids[u], ids[v], 0.8).unwrap();
        }
    }
    // Star centred at 4 with weak ties.
    for leaf in 5..9 {
        b.add_edge_symmetric(ids[4], ids[leaf], 0.2).unwrap();
    }
    // Bridge.
    b.add_edge_symmetric(ids[3], ids[4], 0.3).unwrap();
    b.build()
}

#[test]
fn couple_merge_solves_and_expands() {
    let g = playground();
    // Nodes 0 and 1 are a couple: merge, solve for k-1, expand.
    let merge = scenario::merge_couple(&g, NodeId(0), NodeId(1)).unwrap();
    let k = 4;
    let inst = WasoInstance::new(merge.graph.clone(), k - 1).unwrap();
    let best = BranchBound::new().solve(&inst, None).unwrap();

    let expanded = scenario::expand_couple(&merge, best.group.nodes());
    assert_eq!(expanded.len(), k);
    // The expanded group is feasible in the ORIGINAL graph and contains
    // both halves of the couple iff it contains the merged node.
    if best.group.contains(merge.merged) {
        assert!(expanded.contains(&NodeId(0)) && expanded.contains(&NodeId(1)));
    }
    assert!(traversal::is_connected_subset(&g, &expanded));
    // Willingness is preserved by the merge transformation.
    let w_original = waso::core::willingness(&g, &expanded);
    assert!((w_original - best.group.willingness()).abs() < 1e-9);
}

#[test]
fn foes_are_never_grouped_by_the_exact_solver() {
    let g = playground();
    let penalty = scenario::default_foe_penalty(&g);
    // Make the two strongest clique members foes.
    let poisoned = scenario::mark_foes(&g, NodeId(0), NodeId(1), penalty).unwrap();
    let inst = WasoInstance::new(poisoned, 4).unwrap();
    let best = BranchBound::new().solve(&inst, None).unwrap();
    assert!(
        !(best.group.contains(NodeId(0)) && best.group.contains(NodeId(1))),
        "foes ended up together: {}",
        best.group
    );
}

#[test]
fn invitation_keeps_the_host_and_neighbourhood() {
    let g = playground();
    let host = NodeId(4);
    let (inst, ego) = scenario::invitation(&g, host, 3).unwrap();
    // Candidate pool = closed neighbourhood of the host.
    assert_eq!(inst.graph().num_nodes(), g.degree(host) + 1);
    let mut cfg = CbasNdConfig::fast();
    cfg.base.start_override = Some(vec![NodeId(0)]);
    let res = CbasNd::new(cfg).solve_seeded(&inst, 1).unwrap();
    assert!(res.group.contains(NodeId(0)), "host must attend");
    // All members map back to host-adjacent people (or the host).
    for &v in res.group.nodes() {
        let orig = ego.parent_id(v);
        assert!(orig == host || g.has_edge(host, orig));
    }
}

#[test]
fn exhibition_and_house_warming_flip_the_recommendation() {
    let g = playground();
    let k = 3;
    // Interest-only: the star side (high η) wins.
    let interest_inst = scenario::exhibition(&g, k).unwrap();
    let by_interest = exhaustive_optimum(&interest_inst).unwrap();
    // Tightness-only: the clique side (strong τ) wins.
    let tight_inst = scenario::house_warming(&g, k).unwrap();
    let by_tightness = exhaustive_optimum(&tight_inst).unwrap();

    assert!(by_interest.contains(NodeId(4)), "star centre has η = 0.9");
    assert!(
        by_tightness.nodes().iter().all(|v| v.index() < 4),
        "tightness-only must pick inside the clique: {}",
        by_tightness
    );
    assert_ne!(by_interest.nodes(), by_tightness.nodes());
}

#[test]
fn theorem_two_reduction_matches_native_unconstrained() {
    // Theorem 2: F* is optimal for WASO-dis iff F* ∪ {v} is optimal for
    // the augmented WASO instance. Verify on the playground for several k.
    let g = playground();
    for k in [2usize, 3, 4] {
        let native = WasoInstance::without_connectivity(g.clone(), k).unwrap();
        let native_opt = exhaustive_optimum(&native).unwrap();

        let red = scenario::separate_groups(&g, k, 1.0).unwrap();
        let aug_opt = BranchBound::new().solve(&red.instance, None).unwrap();
        assert!(
            aug_opt.group.contains(red.virtual_node),
            "k={k}: the virtual node dominates every optimal solution"
        );
        let stripped = red.strip(aug_opt.group.nodes());
        let w = waso::core::willingness(&g, &stripped);
        assert!(
            (w - native_opt.willingness()).abs() < 1e-9,
            "k={k}: reduction {w} vs native {}",
            native_opt.willingness()
        );
    }
}

#[test]
fn lambda_extremes_match_dedicated_scenarios() {
    let g = playground();
    let k = 3;
    let n = g.num_nodes();
    let via_lambda_1 = WasoInstance::with_lambda(g.clone(), k, &vec![1.0; n]).unwrap();
    let via_exhibition = scenario::exhibition(&g, k).unwrap();
    assert_eq!(via_lambda_1.graph(), via_exhibition.graph());

    let via_lambda_0 = WasoInstance::with_lambda(g.clone(), k, &vec![0.0; n]).unwrap();
    let via_party = scenario::house_warming(&g, k).unwrap();
    assert_eq!(via_lambda_0.graph(), via_party.graph());
}

//! `waso-solve` — solve a WASO instance from a graph file.
//!
//! ```text
//! waso-solve --graph network.waso --k 8 [options]
//!
//!   --graph FILE          input in the waso-graph v1 text format
//!   --k N                 group size
//!   --algorithm SPEC      a solver spec: NAME[:key=value,...]
//!                         (names and options come from the solver
//!                         registry; see --list-algorithms)
//!   --budget T            shorthand for the budget= spec option
//!   --stages R            shorthand for the stages= spec option
//!                         (default 10 for staged solvers)
//!   --start-nodes M       shorthand for the start-nodes= spec option
//!   --threads N           shorthand for the threads= spec option
//!   --deadline-ms MS      shorthand for the deadline_ms= spec option:
//!                         stop at the next stage boundary once the
//!                         wall-clock budget elapses, returning the best
//!                         incumbent found so far (anytime solvers)
//!   --patience N          shorthand for the patience= spec option: stop
//!                         after N consecutive non-improving stages
//!   --require ID          required attendee (repeatable; enforced for
//!                         every solver or rejected loudly)
//!   --lambda X            uniform interest/tightness weight in [0,1]
//!   --disconnected        drop the connectivity constraint (WASO-dis)
//!   --seed N              RNG seed (default 42)
//!   --list-algorithms     print the registered solvers and exit
//!
//!   --server ADDR         submit to a running `waso-serve` instead of
//!                         solving locally (the server holds the graph,
//!                         k, and seed; --graph/--k do not apply)
//!   --tenant NAME         the tenant to submit as (required with
//!                         --server)
//! ```
//!
//! Everything algorithm-shaped is derived from the [`waso::registry`]:
//! `--algorithm` validation, the name list in the usage string, and the
//! `--list-algorithms` help text. Adding a solver to the registry makes it
//! reachable here with zero CLI changes.
//!
//! In `--server` mode the spec (with all shorthand flags folded in) is
//! sent as one `SUBMIT`, followed by a blocking `WAIT`; the result is
//! printed in the same shape as a local solve. The wire client is a
//! self-contained ~40 lines of the `waso-serve` framing protocol, kept
//! inline so this binary needs no serve-crate dependency.

use std::path::PathBuf;
use std::process::ExitCode;

use waso::prelude::*;

#[derive(Debug)]
struct Args {
    mode: Mode,
    spec: SolverSpec,
    require: Vec<u32>,
    lambda: Option<f64>,
    disconnected: bool,
    seed: u64,
}

#[derive(Debug)]
enum Mode {
    /// Load the graph and solve in-process.
    Local { graph: PathBuf, k: usize },
    /// Submit the spec to a running `waso-serve`.
    Remote { server: String, tenant: String },
}

fn usage(registry: &SolverRegistry) -> String {
    format!(
        "usage: waso-solve --graph FILE --k N [--algorithm {}] \
         [--budget T] [--stages R] [--start-nodes M] [--threads N] \
         [--deadline-ms MS] [--patience N] [--require ID]... \
         [--lambda X] [--disconnected] [--seed N] [--list-algorithms] \
         [--server ADDR --tenant NAME]",
        registry.name_list()
    )
}

/// Parses a numeric flag **at its native type**: a negative or
/// overflowing value is the usual typed usage error, never a silent
/// two's-complement wrap (`--k -1` used to become k = 2^64 - 1 via an
/// `as usize` cast).
fn parse_num<T: std::str::FromStr>(v: String, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {what} '{v}'"))
}

fn parse_args(argv: &[String], registry: &SolverRegistry) -> Result<Args, String> {
    let mut graph: Option<PathBuf> = None;
    let mut k: Option<usize> = None;
    let mut algorithm = "cbas-nd".to_string();
    let mut budget: Option<u64> = None;
    let mut stages: Option<u32> = None;
    let mut start_nodes: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut patience: Option<u32> = None;
    let mut require: Vec<u32> = Vec::new();
    let mut lambda: Option<f64> = None;
    let mut disconnected = false;
    let mut seed: u64 = 42;
    let mut server: Option<String> = None;
    let mut tenant: Option<String> = None;

    let usage = || usage(registry);
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].clone();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--graph" | "-g" => graph = Some(PathBuf::from(value("--graph")?)),
            "--k" | "-k" => k = Some(parse_num(value("--k")?, "k")?),
            "--algorithm" | "-a" => algorithm = value("--algorithm")?,
            "--budget" | "-T" => budget = Some(parse_num(value("--budget")?, "budget")?),
            "--stages" | "-r" => stages = Some(parse_num(value("--stages")?, "stages")?),
            "--start-nodes" | "-m" => {
                start_nodes = Some(parse_num(value("--start-nodes")?, "start-nodes")?)
            }
            "--threads" => threads = Some(parse_num(value("--threads")?, "threads")?),
            "--deadline-ms" => {
                deadline_ms = Some(parse_num(value("--deadline-ms")?, "deadline-ms")?)
            }
            "--patience" => patience = Some(parse_num(value("--patience")?, "patience")?),
            "--require" => require.push(parse_num(value("--require")?, "node id")?),
            "--lambda" => {
                let v = value("--lambda")?;
                lambda = Some(v.parse().map_err(|_| format!("bad lambda '{v}'"))?);
            }
            "--disconnected" => disconnected = true,
            "--seed" => seed = parse_num(value("--seed")?, "seed")?,
            "--server" => server = Some(value("--server")?),
            "--tenant" => tenant = Some(value("--tenant")?),
            "--list-algorithms" => {
                return Err(format!("registered solvers:\n{}", registry.help_text()))
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
        i += 1;
    }

    // The --algorithm string is a full solver spec; the shorthand flags
    // layer on top of whatever it already carries.
    let mut spec = registry
        .parse(&algorithm)
        .map_err(|e| format!("{e}\n{}", usage()))?;
    if let Some(t) = budget {
        spec = spec.budget(t);
    }
    if let Some(r) = stages {
        spec = spec.stages(r);
    } else if spec.stages.is_none() {
        // The CLI's historical default: 10 stages for the staged solvers
        // (the paper's derivation formula degenerates to r = 1 at
        // realistic sizes). Solvers without a stage knob keep a bare spec.
        let entry = registry.resolve(&spec).expect("parse resolved the name");
        if entry.options.contains(&"stages") {
            spec = spec.stages(10);
        }
    }
    if let Some(m) = start_nodes {
        spec = spec.start_nodes(m);
    }
    if let Some(t) = threads {
        spec = spec.threads(t);
    }
    if let Some(ms) = deadline_ms {
        spec = spec.deadline_ms(ms);
    }
    if let Some(p) = patience {
        spec = spec.patience(p);
    }

    let mode = match server {
        Some(server) => {
            // The server holds the instance: graph, k, seed, and any
            // instance transforms are its deployment configuration.
            if graph.is_some() || k.is_some() || !require.is_empty() || lambda.is_some() {
                return Err(format!(
                    "--graph/--k/--require/--lambda are the server's configuration \
                     in --server mode\n{}",
                    usage()
                ));
            }
            Mode::Remote {
                server,
                tenant: tenant
                    .ok_or_else(|| format!("--server requires --tenant NAME\n{}", usage()))?,
            }
        }
        None => {
            if tenant.is_some() {
                return Err(format!("--tenant only applies with --server\n{}", usage()));
            }
            Mode::Local {
                graph: graph.ok_or_else(|| format!("--graph is required\n{}", usage()))?,
                k: k.ok_or_else(|| format!("--k is required\n{}", usage()))?,
            }
        }
    };

    Ok(Args {
        mode,
        spec,
        require,
        lambda,
        disconnected,
        seed,
    })
}

fn run(args: &Args) -> Result<(), String> {
    match &args.mode {
        Mode::Local { graph, k } => run_local(graph, *k, args),
        Mode::Remote { server, tenant } => run_remote(server, tenant, &args.spec),
    }
}

fn run_local(graph: &PathBuf, k: usize, args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(graph)
        .map_err(|e| format!("cannot read {}: {e}", graph.display()))?;
    let parsed = waso::graph::io::from_str(&text).map_err(|e| format!("parse error: {e}"))?;
    eprintln!(
        "loaded {} nodes, {} edges from {}",
        parsed.num_nodes(),
        parsed.num_edges(),
        graph.display()
    );

    let mut session = WasoSession::new(parsed)
        .k(k)
        .seed(args.seed)
        .require(args.require.iter().map(|&v| NodeId(v)));
    if let Some(l) = args.lambda {
        session = session.lambda_uniform(l);
        eprintln!("applied uniform lambda {l}");
    }
    if args.disconnected {
        session = session.disconnected();
    }

    let result = session.solve(&args.spec).map_err(|e| e.to_string())?;
    match result.stats.termination {
        waso::algos::Termination::Completed if result.stats.truncated => {
            eprintln!("warning: work cap hit — result may be suboptimal")
        }
        waso::algos::Termination::Completed => {}
        reason => eprintln!(
            "warning: solve stopped early ({reason}) — best incumbent after {} stages",
            result.stats.stages
        ),
    }
    println!("group: {}", result.group);
    println!("members:");
    for &v in result.group.nodes() {
        println!("  {}", v.0);
    }
    println!("willingness: {}", result.group.willingness());
    eprintln!("solved with {}: {}", args.spec, result.stats);
    Ok(())
}

/// One `SUBMIT` + blocking `WAIT` against a running `waso-serve`,
/// speaking its length-prefixed frame protocol directly (see the
/// `waso-serve` crate docs for the grammar).
fn run_remote(server: &str, tenant: &str, spec: &SolverSpec) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Read, Write};

    let stream = std::net::TcpStream::connect(server)
        .map_err(|e| format!("cannot connect to {server}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut call = move |payload: String| -> Result<String, String> {
        write!(writer, "{}\n{payload}", payload.len()).map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("server closed the connection".to_string());
        }
        let len: usize = line
            .trim_end_matches('\n')
            .parse()
            .map_err(|_| format!("bad frame length {line:?} from server"))?;
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf).map_err(|e| e.to_string())?;
        String::from_utf8(buf).map_err(|_| "non-UTF-8 reply from server".to_string())
    };

    let reply = call(format!("SUBMIT {tenant} {spec}"))?;
    let job = match reply.split_once(' ') {
        Some(("JOB", id)) => id
            .parse::<u64>()
            .map_err(|_| format!("bad job id in {reply:?}"))?,
        _ => return Err(format!("submission refused: {reply}")),
    };
    eprintln!("job {job} accepted by {server} for tenant {tenant}");

    let reply = call(format!("WAIT {job}"))?;
    let fields: Vec<&str> = reply.split(' ').collect();
    match fields.as_slice() {
        // DONE <termination> <willingness> <node,node,...> <samples>
        ["DONE", termination, willingness, nodes, samples] => {
            if *termination != "completed" {
                eprintln!("warning: solve stopped early ({termination}) — best incumbent");
            }
            println!("members:");
            for id in nodes.split(',').filter(|n| *n != "-") {
                println!("  {id}");
            }
            println!("willingness: {willingness}");
            eprintln!("solved remotely with {spec}: {samples} samples ({termination})");
            Ok(())
        }
        ["CANCELLED"] => Err("job was cancelled before producing a group".to_string()),
        _ => Err(format!("solve failed: {reply}")),
    }
}

fn main() -> ExitCode {
    let registry = waso::registry();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv, &registry) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn numeric_flags_parse_at_native_types() {
        let registry = waso::registry();
        let args = parse_args(
            &argv(&[
                "--graph",
                "g.waso",
                "--k",
                "5",
                "--stages",
                "7",
                "--threads",
                "3",
                "--require",
                "9",
                "--seed",
                "11",
            ]),
            &registry,
        )
        .unwrap();
        assert!(matches!(args.mode, Mode::Local { k: 5, .. }));
        assert_eq!(args.spec.stages, Some(7));
        assert_eq!(args.spec.threads, Some(3));
        assert_eq!(args.require, vec![9]);
        assert_eq!(args.seed, 11);
    }

    #[test]
    fn negative_values_are_typed_errors_not_wraps() {
        let registry = waso::registry();
        // `--k -1` used to wrap to 2^64 - 1 via `parse::<u64>() as usize`.
        for (flag, what) in [
            ("--k", "k"),
            ("--stages", "stages"),
            ("--start-nodes", "start-nodes"),
            ("--threads", "threads"),
            ("--patience", "patience"),
            ("--require", "node id"),
        ] {
            let err = parse_args(
                &argv(&["--graph", "g.waso", "--k", "3", flag, "-1"]),
                &registry,
            )
            .unwrap_err();
            assert_eq!(err, format!("bad {what} '-1'"), "flag {flag}");
        }
    }

    #[test]
    fn overflowing_values_are_typed_errors_not_truncations() {
        let registry = waso::registry();
        // Larger than u32::MAX: would have truncated through `as u32`.
        let err = parse_args(
            &argv(&["--graph", "g.waso", "--k", "3", "--stages", "4294967296"]),
            &registry,
        )
        .unwrap_err();
        assert_eq!(err, "bad stages '4294967296'");
        // Larger than u64::MAX: rejected for u64-typed flags too.
        let err = parse_args(
            &argv(&[
                "--graph",
                "g.waso",
                "--k",
                "3",
                "--budget",
                "99999999999999999999",
            ]),
            &registry,
        )
        .unwrap_err();
        assert_eq!(err, "bad budget '99999999999999999999'");
    }
}

//! `waso-solve` — solve a WASO instance from a graph file.
//!
//! ```text
//! waso-solve --graph network.waso --k 8 [options]
//!
//!   --graph FILE          input in the waso-graph v1 text format
//!   --k N                 group size
//!   --algorithm NAME      dgreedy | rgreedy | cbas | cbas-nd (default) |
//!                         cbas-nd-g | exact
//!   --budget T            sampling budget for randomized solvers (default 2000)
//!   --stages R            stage count (default 10)
//!   --start-nodes M       number of start nodes (default: graph-derived)
//!   --require ID          required attendee (repeatable; cbas-nd only)
//!   --lambda X            uniform interest/tightness weight in [0,1]
//!   --disconnected        drop the connectivity constraint (WASO-dis)
//!   --seed N              RNG seed (default 42)
//!   --threads N           parallel CBAS-ND with N workers
//! ```
//!
//! Prints the selected group, its willingness, and run statistics.

use std::path::PathBuf;
use std::process::ExitCode;

use waso::prelude::*;
use waso_exact::BranchBound;

#[derive(Debug)]
struct Args {
    graph: PathBuf,
    k: usize,
    algorithm: String,
    budget: u64,
    stages: u32,
    start_nodes: Option<usize>,
    require: Vec<u32>,
    lambda: Option<f64>,
    disconnected: bool,
    seed: u64,
    threads: Option<usize>,
}

const USAGE: &str = "usage: waso-solve --graph FILE --k N \
[--algorithm dgreedy|rgreedy|cbas|cbas-nd|cbas-nd-g|exact] [--budget T] \
[--stages R] [--start-nodes M] [--require ID]... [--lambda X] \
[--disconnected] [--seed N] [--threads N]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut graph: Option<PathBuf> = None;
    let mut k: Option<usize> = None;
    let mut args = Args {
        graph: PathBuf::new(),
        k: 0,
        algorithm: "cbas-nd".into(),
        budget: 2000,
        stages: 10,
        start_nodes: None,
        require: Vec::new(),
        lambda: None,
        disconnected: false,
        seed: 42,
        threads: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].clone();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        let parse = |v: String, what: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad {what} '{v}'"))
        };
        match arg.as_str() {
            "--graph" | "-g" => graph = Some(PathBuf::from(value("--graph")?)),
            "--k" | "-k" => k = Some(parse(value("--k")?, "k")? as usize),
            "--algorithm" | "-a" => args.algorithm = value("--algorithm")?,
            "--budget" | "-T" => args.budget = parse(value("--budget")?, "budget")?,
            "--stages" | "-r" => args.stages = parse(value("--stages")?, "stages")? as u32,
            "--start-nodes" | "-m" => {
                args.start_nodes = Some(parse(value("--start-nodes")?, "start-nodes")? as usize)
            }
            "--require" => args.require.push(parse(value("--require")?, "node id")? as u32),
            "--lambda" => {
                let v = value("--lambda")?;
                let l: f64 = v.parse().map_err(|_| format!("bad lambda '{v}'"))?;
                args.lambda = Some(l);
            }
            "--disconnected" => args.disconnected = true,
            "--seed" => args.seed = parse(value("--seed")?, "seed")?,
            "--threads" => args.threads = Some(parse(value("--threads")?, "threads")? as usize),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }
    args.graph = graph.ok_or_else(|| format!("--graph is required\n{USAGE}"))?;
    args.k = k.ok_or_else(|| format!("--k is required\n{USAGE}"))?;
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.graph)
        .map_err(|e| format!("cannot read {}: {e}", args.graph.display()))?;
    let mut graph = waso::graph::io::from_str(&text).map_err(|e| format!("parse error: {e}"))?;
    eprintln!(
        "loaded {} nodes, {} edges from {}",
        graph.num_nodes(),
        graph.num_edges(),
        args.graph.display()
    );

    if let Some(l) = args.lambda {
        graph = waso::core::instance::apply_lambda(&graph, &vec![l; graph.num_nodes()])
            .map_err(|e| e.to_string())?;
        eprintln!("applied uniform lambda {l}");
    }

    let instance = if args.disconnected {
        WasoInstance::without_connectivity(graph, args.k)
    } else {
        WasoInstance::new(graph, args.k)
    }
    .map_err(|e| e.to_string())?;

    let required: Vec<NodeId> = args.require.iter().map(|&v| NodeId(v)).collect();

    let mut cbas_cfg = CbasConfig::with_budget(args.budget);
    cbas_cfg.stages = Some(args.stages);
    cbas_cfg.num_start_nodes = args.start_nodes;
    let mut nd_cfg = CbasNdConfig::with_budget(args.budget);
    nd_cfg.base = cbas_cfg.clone();

    let t0 = std::time::Instant::now();
    let outcome: Result<SolveResult, SolveError> = match args.algorithm.as_str() {
        "dgreedy" => {
            let mut s = match required.first() {
                Some(&v) => DGreedy::from_start(v),
                None => DGreedy::new(),
            };
            s.solve_seeded(&instance, args.seed)
        }
        "rgreedy" => {
            let mut cfg = RGreedyConfig::with_budget(args.budget);
            cfg.num_start_nodes = args.start_nodes;
            RGreedy::new(cfg).solve_seeded(&instance, args.seed)
        }
        "cbas" => Cbas::new(cbas_cfg).solve_seeded(&instance, args.seed),
        "cbas-nd" | "cbas-nd-g" => {
            if args.algorithm == "cbas-nd-g" {
                nd_cfg = nd_cfg.gaussian();
            }
            match (args.threads, required.is_empty()) {
                (Some(t), true) => {
                    ParallelCbasNd::new(nd_cfg, t).solve_seeded(&instance, args.seed)
                }
                (_, false) => {
                    CbasNd::new(nd_cfg).solve_with_required(&instance, &required, args.seed)
                }
                _ => CbasNd::new(nd_cfg).solve_seeded(&instance, args.seed),
            }
        }
        "exact" => {
            let res = BranchBound::with_cap(200_000_000)
                .solve(&instance, None)
                .ok_or(SolveError::NoFeasibleGroup);
            res.map(|r| {
                if !r.optimal {
                    eprintln!("warning: expansion cap hit — result may be suboptimal");
                }
                SolveResult {
                    group: r.group,
                    stats: Default::default(),
                }
            })
        }
        other => return Err(format!("unknown algorithm '{other}'\n{USAGE}")),
    };
    let elapsed = t0.elapsed();

    let result = outcome.map_err(|e| e.to_string())?;
    println!("group: {}", result.group);
    println!("members:");
    for &v in result.group.nodes() {
        println!("  {}", v.0);
    }
    println!("willingness: {}", result.group.willingness());
    eprintln!(
        "solved with {} in {:.3}s ({} samples, {} stages)",
        args.algorithm,
        elapsed.as_secs_f64(),
        result.stats.samples_drawn,
        result.stats.stages
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

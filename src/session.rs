//! [`WasoSession`] — the one-stop facade for solving WASO instances.
//!
//! A session owns everything around the solver that callers used to
//! hand-roll: instance validation (group size, λ weights, connectivity
//! mode), the seed policy, constraint enforcement (required attendees are
//! guaranteed or the combination is *rejected* — never silently dropped),
//! and result reporting. Solvers are chosen by [`SolverSpec`] and built
//! through the [`SolverRegistry`], so a session works identically for
//! every registered algorithm, including ones registered after the fact.
//!
//! Under the hood the staged specs (`cbas`, `cbas-nd`, `cbas-nd-g`,
//! `cbas-nd-par`, and any `threads=N` variant) all resolve to the single
//! `waso_algos::engine::StagedEngine`; a spec's `threads` knob selects
//! the engine's pooled execution backend without changing the answer —
//! solves are bit-identical for every thread count, so the session's
//! reproducibility guarantee (same `(instance, spec, seed)` → same group)
//! holds regardless of parallelism.
//!
//! ```
//! use waso::prelude::*;
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(0.8);
//! let c = b.add_node(0.5);
//! let d = b.add_node(0.9);
//! b.add_edge_symmetric(a, c, 0.7).unwrap();
//! b.add_edge_symmetric(c, d, 0.4).unwrap();
//!
//! let session = WasoSession::new(b.build()).k(2).seed(42);
//! let result = session.solve(&SolverSpec::cbas_nd().budget(200).stages(4)).unwrap();
//! assert_eq!(result.group.len(), 2);
//! assert!((result.group.willingness() - 2.7).abs() < 1e-9);
//! ```

use std::fmt;

use waso_algos::{SolveError, SolveResult, SolverRegistry, SolverSpec, SpecError};
use waso_core::{CoreError, WasoInstance};
use waso_graph::{NodeId, SocialGraph};

/// The session's default seed — solves are reproducible out of the box,
/// and explicitly seeded when exploration is wanted.
pub const DEFAULT_SEED: u64 = 42;

/// The fully-populated solver registry: the `waso-algos` family
/// ([`SolverRegistry::builtin`]) plus `waso-exact`'s branch-and-bound.
/// This is the table behind every [`WasoSession`], the `waso-solve` CLI,
/// and the `waso-bench` figure drivers.
pub fn registry() -> SolverRegistry {
    let mut r = SolverRegistry::builtin();
    waso_exact::register_exact(&mut r);
    r
}

/// Why a session could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// [`WasoSession::k`] was never called.
    GroupSizeNotSet,
    /// Instance construction or validation failed (bad `k`, bad λ,
    /// unknown/duplicate required attendee).
    Core(CoreError),
    /// The spec did not resolve to a buildable solver.
    Spec(SpecError),
    /// The solver ran and failed (infeasible, or a constraint it cannot
    /// honour).
    Solve(SolveError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::GroupSizeNotSet => {
                write!(
                    f,
                    "group size not set — call WasoSession::k(...) before solving"
                )
            }
            SessionError::Core(e) => write!(f, "invalid instance: {e}"),
            SessionError::Spec(e) => write!(f, "unusable solver spec: {e}"),
            SessionError::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> Self {
        SessionError::Core(e)
    }
}

impl From<SpecError> for SessionError {
    fn from(e: SpecError) -> Self {
        SessionError::Spec(e)
    }
}

impl From<SolveError> for SessionError {
    fn from(e: SolveError) -> Self {
        SessionError::Solve(e)
    }
}

/// A configured solving context: graph + constraints + seed policy +
/// registry. Build once, solve with as many specs as you like.
#[derive(Debug)]
pub struct WasoSession {
    graph: SocialGraph,
    k: Option<usize>,
    required: Vec<NodeId>,
    connectivity: bool,
    lambda: Option<Vec<f64>>,
    seed: u64,
    registry: SolverRegistry,
}

impl WasoSession {
    /// A session over `graph` with the full [`registry`], connectivity
    /// required, no constraints, and the [`DEFAULT_SEED`].
    pub fn new(graph: SocialGraph) -> Self {
        Self {
            graph,
            k: None,
            required: Vec::new(),
            connectivity: true,
            lambda: None,
            seed: DEFAULT_SEED,
            registry: registry(),
        }
    }

    /// Sets the group size `k` (mandatory).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Adds attendees that must appear in every answer. Enforced
    /// *uniformly*: solvers that cannot guarantee membership reject the
    /// solve ([`SolveError::RequiredUnsupported`]) instead of ignoring the
    /// constraint.
    pub fn require(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.required.extend(nodes);
        self
    }

    /// Drops the connectivity constraint (the §2.2 WASO-dis variant).
    pub fn disconnected(mut self) -> Self {
        self.connectivity = false;
        self
    }

    /// Applies per-node λ weights (footnote 7): `η̃ = λη`,
    /// `τ̃_{i,·} = (1-λ_i)τ_{i,·}`. Validated at solve time.
    pub fn lambda(mut self, lambda: Vec<f64>) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Applies one λ to every node.
    pub fn lambda_uniform(mut self, l: f64) -> Self {
        self.lambda = Some(vec![l; self.graph.num_nodes()]);
        self
    }

    /// Sets the seed every solve derives its randomness from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the solver registry (to add custom solvers or restrict
    /// the available set).
    pub fn with_registry(mut self, registry: SolverRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The registry this session resolves specs against.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// The graph under optimization (λ not yet applied).
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Builds and validates the [`WasoInstance`] this session describes.
    pub fn instance(&self) -> Result<WasoInstance, SessionError> {
        let k = self.k.ok_or(SessionError::GroupSizeNotSet)?;
        let graph = match &self.lambda {
            Some(l) => waso_core::instance::apply_lambda(&self.graph, l)?,
            None => self.graph.clone(),
        };
        let instance = if self.connectivity {
            WasoInstance::new(graph, k)?
        } else {
            WasoInstance::without_connectivity(graph, k)?
        };
        validate_required(&instance, &self.required)?;
        Ok(instance)
    }

    /// Solves with the given spec: validates the instance, merges the
    /// session's and the spec's required attendees, rejects spec/solver
    /// combinations that cannot honour them, and runs the solver under
    /// the session's seed policy.
    pub fn solve(&self, spec: &SolverSpec) -> Result<SolveResult, SessionError> {
        let instance = self.instance()?;

        // Union of session-level and spec-level required attendees,
        // first-mention order. The merged set is re-validated: the spec
        // half never went through `instance()`.
        let mut required = self.required.clone();
        for &v in &spec.required {
            if !required.contains(&v) {
                required.push(v);
            }
        }
        validate_required(&instance, &required)?;

        let entry = self.registry.resolve(spec)?;
        if !required.is_empty() && !entry.capabilities.required_attendees {
            // Rejected up front, before paying for construction — and
            // re-checked by the solver itself as a backstop.
            return Err(SolveError::RequiredUnsupported { solver: entry.name }.into());
        }

        let mut solver = self.registry.build(spec)?;
        let result = solver.solve_with_required(&instance, &required, self.seed)?;
        debug_assert!(
            required.iter().all(|&v| result.group.contains(v)),
            "solver {} violated the required-attendee contract",
            solver.name()
        );
        Ok(result)
    }

    /// [`WasoSession::solve`] from a spec string (`"cbas-nd:budget=500"`),
    /// resolved and canonicalized against the session's registry.
    pub fn solve_str(&self, spec: &str) -> Result<SolveResult, SessionError> {
        let spec = self.registry.parse(spec)?;
        self.solve(&spec)
    }
}

/// Bounds, duplicate and size checks for a required-attendee list.
fn validate_required(instance: &WasoInstance, required: &[NodeId]) -> Result<(), SessionError> {
    let n = instance.graph().num_nodes() as u32;
    let mut seen = std::collections::BTreeSet::new();
    for &v in required {
        if v.0 >= n {
            return Err(CoreError::UnknownNode(v.0).into());
        }
        if !seen.insert(v.0) {
            return Err(CoreError::DuplicateMember(v.0).into());
        }
    }
    if required.len() > instance.k() {
        return Err(CoreError::WrongSize {
            got: required.len(),
            want: instance.k(),
        }
        .into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    fn path4() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        b.build()
    }

    #[test]
    fn session_solves_with_any_registered_spec() {
        let session = WasoSession::new(path4()).k(3);
        for spec in ["dgreedy", "cbas:budget=60,stages=2", "exact"] {
            let res = session.solve_str(spec).unwrap();
            assert_eq!(res.group.len(), 3, "{spec}");
        }
    }

    #[test]
    fn missing_k_is_an_error() {
        let err = WasoSession::new(path4()).solve_str("dgreedy").unwrap_err();
        assert_eq!(err, SessionError::GroupSizeNotSet);
    }

    #[test]
    fn required_attendees_are_enforced_or_rejected() {
        let session = WasoSession::new(path4()).k(3).require([NodeId(0)]);
        // CBAS-ND honours the requirement.
        let res = session.solve_str("cbas-nd:budget=60,stages=2").unwrap();
        assert!(res.group.contains(NodeId(0)));
        // CBAS cannot guarantee it — rejected, not ignored.
        let err = session.solve_str("cbas:budget=60").unwrap_err();
        assert_eq!(
            err,
            SessionError::Solve(SolveError::RequiredUnsupported { solver: "cbas" })
        );
    }

    #[test]
    fn spec_level_requirements_merge_with_session_ones() {
        let session = WasoSession::new(path4()).k(3).require([NodeId(0)]);
        let res = session
            .solve(
                &SolverSpec::cbas_nd()
                    .budget(80)
                    .stages(2)
                    .require([NodeId(2)]),
            )
            .unwrap();
        assert!(res.group.contains(NodeId(0)));
        assert!(res.group.contains(NodeId(2)));
    }

    #[test]
    fn invalid_required_sets_fail_validation() {
        let g = path4();
        let err = WasoSession::new(g.clone())
            .k(2)
            .require([NodeId(99)])
            .solve_str("cbas-nd")
            .unwrap_err();
        assert_eq!(err, SessionError::Core(CoreError::UnknownNode(99)));

        let err = WasoSession::new(g.clone())
            .k(2)
            .require([NodeId(1), NodeId(1)])
            .solve_str("cbas-nd")
            .unwrap_err();
        assert_eq!(err, SessionError::Core(CoreError::DuplicateMember(1)));

        let err = WasoSession::new(g)
            .k(2)
            .require([NodeId(0), NodeId(1), NodeId(2)])
            .solve_str("cbas-nd")
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Core(CoreError::WrongSize { got: 3, want: 2 })
        );
    }

    #[test]
    fn disconnected_mode_reaches_separated_optima() {
        // Two components; the best pair straddles them.
        let mut b = GraphBuilder::new();
        let a = b.add_node(10.0);
        let c = b.add_node(9.0);
        let d = b.add_node(1.0);
        b.add_edge_symmetric(a, d, 0.1).unwrap();
        let _ = c;
        let session = WasoSession::new(b.build()).k(2).disconnected();
        let res = session.solve_str("dgreedy").unwrap();
        assert_eq!(res.group.willingness(), 19.0);
    }

    #[test]
    fn lambda_rescores_the_instance() {
        let session = WasoSession::new(path4()).k(3).lambda_uniform(1.0);
        // λ = 1 everywhere: tightness vanishes, best trio is {v1,v2,v3}
        // by pure interest (8+7+6).
        let res = session.solve_str("exact").unwrap();
        assert_eq!(res.group.willingness(), 21.0);

        let err = WasoSession::new(path4())
            .k(3)
            .lambda(vec![0.5; 3])
            .solve_str("dgreedy")
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Core(CoreError::BadParameterLength { got: 3, want: 4 })
        );
    }

    #[test]
    fn seed_policy_is_deterministic_and_overridable() {
        let g = waso_datasets::synthetic::facebook_like_n(120, 3);
        let session = WasoSession::new(g.clone()).k(6);
        let a = session.solve_str("cbas-nd:budget=80,stages=3").unwrap();
        let b = session.solve_str("cbas-nd:budget=80,stages=3").unwrap();
        assert_eq!(a.group, b.group, "default seed is fixed");

        let reseeded = WasoSession::new(g).k(6).seed(7);
        let c = reseeded.solve_str("cbas-nd:budget=80,stages=3").unwrap();
        // Different seed explores differently (stats differ even if the
        // answer coincides).
        assert!(c.group.validate(&reseeded.instance().unwrap()).is_ok());
    }

    #[test]
    fn unknown_algorithms_name_the_known_set() {
        let err = WasoSession::new(path4())
            .k(2)
            .solve_str("magic")
            .unwrap_err();
        match err {
            SessionError::Spec(SpecError::UnknownAlgorithm { known, .. }) => {
                assert!(known.contains(&"exact"), "exact is registered");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

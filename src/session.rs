//! [`WasoSession`] — the one-stop facade for solving WASO instances.
//!
//! A session owns everything around the solver that callers used to
//! hand-roll: instance validation (group size, λ weights, connectivity
//! mode), the seed policy, constraint enforcement (required attendees are
//! guaranteed or the combination is *rejected* — never silently dropped),
//! and result reporting. Solvers are chosen by [`SolverSpec`] and built
//! through the [`SolverRegistry`], so a session works identically for
//! every registered algorithm, including ones registered after the fact.
//!
//! Under the hood the staged specs (`cbas`, `cbas-nd`, `cbas-nd-g`,
//! `cbas-nd-par`, and any `threads=N` variant) all resolve to the single
//! `waso_algos::engine::StagedEngine`; a spec's `threads` knob selects
//! the engine's pooled execution backend without changing the answer —
//! solves are bit-identical for every thread count, so the session's
//! reproducibility guarantee (same `(instance, spec, seed)` → same group)
//! holds regardless of parallelism.
//!
//! Pooled solves share one [`SharedPool`]: worker threads are spawned on
//! first use (or attached via [`WasoSession::attach_pool`], in which case
//! any number of sessions share one process-wide pool) and reused by
//! every later solve; the validated instance is cloned once and shared.
//! For many solves in one go, [`WasoSession::solve_batch`] /
//! [`WasoSession::solve_many`] run a slice of spec jobs **concurrently**
//! over that shared state with per-job error reporting — bit-identical
//! to solving each spec alone, in the slice's order.
//!
//! The solve surface itself is built on **job handles**:
//! [`WasoSession::submit`] / [`WasoSession::submit_batch`] return
//! [`SolveHandle`]s that poll ([`SolveHandle::try_result`]), block
//! ([`SolveHandle::wait`]), cancel ([`SolveHandle::cancel`] — the job
//! stops at its next stage boundary and returns its best-so-far group),
//! report progress, and stream improving incumbents
//! ([`SolveHandle::incumbents`]); the spec knobs `deadline_ms=` and
//! `patience=` bound a job's latency declaratively. The blocking calls
//! are thin wrappers (`solve` *is* submit+wait), so handle-based and
//! blocking results are bit-identical by construction.
//!
//! ```
//! use waso::prelude::*;
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(0.8);
//! let c = b.add_node(0.5);
//! let d = b.add_node(0.9);
//! b.add_edge_symmetric(a, c, 0.7).unwrap();
//! b.add_edge_symmetric(c, d, 0.4).unwrap();
//!
//! let session = WasoSession::new(b.build()).k(2).seed(42);
//!
//! // Blocking call…
//! let spec = SolverSpec::cbas_nd().budget(200).stages(4);
//! let result = session.solve(&spec).unwrap();
//! assert_eq!(result.group.len(), 2);
//! assert!((result.group.willingness() - 2.7).abs() < 1e-9);
//!
//! // …and the same solve as a job handle: submit, watch, wait.
//! let handle = session.submit(&spec).unwrap();
//! let _progress = handle.progress(); // stages done, samples, incumbent
//! let handled = handle.wait().unwrap(); // bit-identical to `result`
//! assert_eq!(handled.group, result.group);
//!
//! // Anytime serving: bound latency with a deadline and early-stop
//! // patience; the result reports how the solve terminated.
//! let bounded = session
//!     .solve(&spec.clone().deadline_ms(10_000).patience(2))
//!     .unwrap();
//! assert!(bounded.group.willingness() > 0.0);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};

use waso_algos::{
    Incumbent, JobControl, JobProgress, SharedPool, SolveError, SolveResult, Solver,
    SolverRegistry, SolverSpec, SpecError, Termination,
};
use waso_core::{CoreError, Group, InstanceFingerprint, WasoInstance};
use waso_graph::{DeltaError, GraphDelta, NodeId, SocialGraph};

/// The session's default seed — solves are reproducible out of the box,
/// and explicitly seeded when exploration is wanted.
pub const DEFAULT_SEED: u64 = 42;

/// The fully-populated solver registry: the `waso-algos` family
/// ([`SolverRegistry::builtin`]) plus `waso-exact`'s branch-and-bound.
/// This is the table behind every [`WasoSession`], the `waso-solve` CLI,
/// and the `waso-bench` figure drivers.
pub fn registry() -> SolverRegistry {
    let mut r = SolverRegistry::builtin();
    waso_exact::register_exact(&mut r);
    r
}

/// Why a session could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// [`WasoSession::k`] was never called.
    GroupSizeNotSet,
    /// Instance construction or validation failed (bad `k`, bad λ,
    /// unknown/duplicate required attendee).
    Core(CoreError),
    /// The spec did not resolve to a buildable solver.
    Spec(SpecError),
    /// The solver ran and failed (infeasible, or a constraint it cannot
    /// honour).
    Solve(SolveError),
    /// A [`GraphDelta`] could not be applied to the session's graph
    /// (unknown node, self-loop, adding an existing edge, removing a
    /// missing one).
    Delta(DeltaError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::GroupSizeNotSet => {
                write!(
                    f,
                    "group size not set — call WasoSession::k(...) before solving"
                )
            }
            SessionError::Core(e) => write!(f, "invalid instance: {e}"),
            SessionError::Spec(e) => write!(f, "unusable solver spec: {e}"),
            SessionError::Solve(e) => write!(f, "solve failed: {e}"),
            SessionError::Delta(e) => write!(f, "delta rejected: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> Self {
        SessionError::Core(e)
    }
}

impl From<SpecError> for SessionError {
    fn from(e: SpecError) -> Self {
        SessionError::Spec(e)
    }
}

impl From<SolveError> for SessionError {
    fn from(e: SolveError) -> Self {
        SessionError::Solve(e)
    }
}

impl From<DeltaError> for SessionError {
    fn from(e: DeltaError) -> Self {
        SessionError::Delta(e)
    }
}

/// Counters of the session's solve memo (see
/// [`WasoSession::memo_stats`]). Monotone over the session's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Solves answered from the memo — no solver ran, the cached
    /// [`SolveResult`] was returned bit-identically in O(1).
    pub hits: u64,
    /// Cacheable solves that had to run (and, when they completed,
    /// populated the memo). Wall-clock-bounded specs (`deadline_ms=`,
    /// `deadline_from_submit=`) bypass the memo and count as neither.
    pub misses: u64,
    /// Cached entries dropped by [`WasoSession::apply`] because a delta
    /// touched their group or its one-hop frontier. Each stashes its
    /// group as a warm-start incumbent for the next matching solve.
    pub invalidated: u64,
}

/// Memo key: everything a cached result's bits depend on — the instance
/// fingerprint digest, the canonical spec rendering, the merged
/// (session ∪ spec) required-attendee set, and the session seed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MemoKey {
    digest: u64,
    spec: String,
    required: Vec<u32>,
    seed: u64,
}

/// Warm-start key: a [`MemoKey`] minus the fingerprint — the incumbent
/// of an invalidated entry applies to the *post-delta* instance,
/// whatever its digest.
type WarmKey = (String, Vec<u32>, u64);

/// One cached solve.
#[derive(Debug, Clone)]
struct MemoEntry {
    result: SolveResult,
    /// The group's members plus their one-hop frontier, sorted. A delta
    /// whose endpoints avoid this set cannot change the group's
    /// willingness or feasibility, so the entry survives it.
    touch: Vec<u32>,
}

/// The session's solve memo: completed results keyed by
/// ([`InstanceFingerprint`], spec, constraints, seed), plus the
/// warm-start incumbents of delta-invalidated entries. Shared (`Arc`)
/// with job coordinators so finished solves insert their results.
#[derive(Debug, Default)]
struct SolveMemo {
    entries: BTreeMap<MemoKey, MemoEntry>,
    warm: BTreeMap<WarmKey, Vec<NodeId>>,
    stats: MemoStats,
}

/// The sorted touch set of a cached result: the group's members plus
/// their one-hop neighbourhood in the *solved* (λ-applied) graph.
fn touch_set(instance: &WasoInstance, nodes: &[NodeId]) -> Vec<u32> {
    let g = instance.graph();
    let mut touch: Vec<u32> = Vec::new();
    for &v in nodes {
        touch.push(v.0);
        touch.extend(g.neighbors(v).iter().copied());
    }
    touch.sort_unstable();
    touch.dedup();
    touch
}

/// A configured solving context: graph + constraints + seed policy +
/// registry. Build once, solve with as many specs as you like.
///
/// Sessions hold two lazily-created, solve-to-solve caches:
///
/// * the **validated instance** (`Arc`) — built on the first solve and
///   shared by every later one (and by every job of a
///   [`WasoSession::solve_batch`]), so the graph is validated and cloned
///   once per session instead of once per solve;
/// * the **worker pool** ([`SharedPool`]) — attached up front
///   ([`WasoSession::attach_pool`], possibly shared with other sessions
///   of the process) or spawned on the first solve whose spec asks for
///   threads, and reused by every pooled solve after it, amortizing
///   thread creation across the session (§5.3.1 at serving scale). The
///   pool is self-healing (a panicked worker is respawned and its
///   in-flight samples re-drawn) and its scheduler runs jobs from any
///   number of sessions concurrently. The determinism contract makes all
///   of that unobservable in results: solves are bit-identical for every
///   worker count and tenant mix, so the session guarantee (same
///   `(instance, spec, seed)` → same group) is unaffected.
#[derive(Debug)]
pub struct WasoSession {
    graph: SocialGraph,
    k: Option<usize>,
    required: Vec<NodeId>,
    connectivity: bool,
    lambda: Option<Vec<f64>>,
    seed: u64,
    registry: SolverRegistry,
    /// Pinned worker count for a lazily-spawned session pool; `None`
    /// sizes it from the first pooled spec. Ignored once a pool is
    /// attached.
    pool_threads: Option<usize>,
    /// Pinned coordinator-crew width for batch submissions; `None` falls
    /// back to the `WASO_BATCH_WIDTH` env var, then to
    /// `max(2, available_parallelism)`.
    batch_width: Option<usize>,
    /// The validated instance, built once per session configuration.
    instance_cache: Mutex<Option<Arc<WasoInstance>>>,
    /// The worker pool every pooled solve of this session runs over —
    /// attached, or spawned on first pooled use.
    pool: Mutex<Option<Arc<SharedPool>>>,
    /// The solve memo. `Arc`-shared with job coordinators so completed
    /// solves insert their results after `submit` has returned.
    memo: Arc<Mutex<SolveMemo>>,
    /// The instance fingerprint, computed once per configuration and
    /// updated *incrementally* by [`WasoSession::apply`].
    fingerprint_cache: Mutex<Option<InstanceFingerprint>>,
}

impl WasoSession {
    /// A session over `graph` with the full [`registry`], connectivity
    /// required, no constraints, and the [`DEFAULT_SEED`].
    pub fn new(graph: SocialGraph) -> Self {
        Self {
            graph,
            k: None,
            required: Vec::new(),
            connectivity: true,
            lambda: None,
            seed: DEFAULT_SEED,
            registry: registry(),
            pool_threads: None,
            batch_width: None,
            instance_cache: Mutex::new(None),
            pool: Mutex::new(None),
            memo: Arc::new(Mutex::new(SolveMemo::default())),
            fingerprint_cache: Mutex::new(None),
        }
    }

    /// Forgets the cached instance (and its fingerprint) after a
    /// configuration change. The memo itself survives: entries are keyed
    /// by fingerprint, so a changed configuration simply stops matching
    /// them — and matches them again if it is changed back.
    fn invalidate_instance(&mut self) {
        // Poison-tolerant: a cache is plain data, valid even if a panic
        // elsewhere poisoned the mutex.
        *self
            .instance_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
        *self
            .fingerprint_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Sets the group size `k` (mandatory).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self.invalidate_instance();
        self
    }

    /// Adds attendees that must appear in every answer. Enforced
    /// *uniformly*: solvers that cannot guarantee membership reject the
    /// solve ([`SolveError::RequiredUnsupported`]) instead of ignoring the
    /// constraint.
    pub fn require(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.required.extend(nodes);
        self
    }

    /// Drops the connectivity constraint (the §2.2 WASO-dis variant).
    pub fn disconnected(mut self) -> Self {
        self.connectivity = false;
        self.invalidate_instance();
        self
    }

    /// Applies per-node λ weights (footnote 7): `η̃ = λη`,
    /// `τ̃_{i,·} = (1-λ_i)τ_{i,·}`. Validated at solve time.
    pub fn lambda(mut self, lambda: Vec<f64>) -> Self {
        self.lambda = Some(lambda);
        self.invalidate_instance();
        self
    }

    /// Applies one λ to every node.
    pub fn lambda_uniform(mut self, l: f64) -> Self {
        self.lambda = Some(vec![l; self.graph.num_nodes()]);
        self.invalidate_instance();
        self
    }

    /// Sets the seed every solve derives its randomness from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the session pool's worker count. Without this, the pool is
    /// sized by the first pooled spec's `threads` value. Either way the
    /// answers are bit-identical — the count only affects wall-clock.
    /// Ignored when a pool is [`WasoSession::attach_pool`]ed.
    pub fn pool_threads(mut self, threads: usize) -> Self {
        self.pool_threads = Some(threads.max(1));
        self
    }

    /// Pins the coordinator-crew width of [`WasoSession::submit_batch`] /
    /// [`WasoSession::solve_batch`]: at most `n` jobs run concurrently
    /// (each coordinator drives whole jobs; per-sample parallelism lives
    /// in the worker pool the jobs share). Clamped to ≥ 1.
    ///
    /// Without this the width comes from the `WASO_BATCH_WIDTH`
    /// environment variable, and failing that defaults to
    /// `max(2, available_parallelism)` — **at least two** coordinators,
    /// so batch jobs genuinely overlap even on a 1-core box (where
    /// `available_parallelism` alone would serialize the batch and make
    /// the concurrency-equivalence tests vacuous). The width is a pure
    /// scheduling knob: results are bit-identical for every value.
    pub fn batch_width(mut self, width: usize) -> Self {
        self.batch_width = Some(width.max(1));
        self
    }

    /// Attaches a (possibly process-wide) [`SharedPool`]: every pooled
    /// solve of this session runs as a job of `pool` instead of a
    /// session-private one. Hand clones of the same `Arc` to any number
    /// of sessions — the pool's scheduler runs their jobs concurrently,
    /// and results stay bit-identical to solving each alone.
    pub fn attach_pool(mut self, pool: Arc<SharedPool>) -> Self {
        *self.pool.get_mut().unwrap_or_else(PoisonError::into_inner) = Some(pool);
        self
    }

    /// Replaces the solver registry (to add custom solvers or restrict
    /// the available set).
    pub fn with_registry(mut self, registry: SolverRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The registry this session resolves specs against.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// The graph under optimization (λ not yet applied).
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Builds and validates the [`WasoInstance`] this session describes.
    pub fn instance(&self) -> Result<WasoInstance, SessionError> {
        let k = self.k.ok_or(SessionError::GroupSizeNotSet)?;
        let graph = match &self.lambda {
            Some(l) => waso_core::instance::apply_lambda(&self.graph, l)?,
            None => self.graph.clone(),
        };
        let instance = if self.connectivity {
            WasoInstance::new(graph, k)?
        } else {
            WasoInstance::without_connectivity(graph, k)?
        };
        validate_required(&instance, &self.required)?;
        Ok(instance)
    }

    /// The session's validated instance, built and cloned **once** and
    /// shared by every solve (the batch API's "validate once" half).
    fn shared_instance(&self) -> Result<Arc<WasoInstance>, SessionError> {
        let mut cache = self
            .instance_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(instance) = cache.as_ref() {
            return Ok(Arc::clone(instance));
        }
        let instance = Arc::new(self.instance()?);
        *cache = Some(Arc::clone(&instance));
        Ok(instance)
    }

    /// Solves with the given spec: validates the instance (cached across
    /// solves), merges the session's and the spec's required attendees,
    /// rejects spec/solver combinations that cannot honour them, and runs
    /// the solver under the session's seed policy — over the session-held
    /// worker pool when the spec asks for threads.
    ///
    /// A thin wrapper over [`WasoSession::submit`] + [`SolveHandle::wait`]
    /// — the blocking and handle-based paths are one code path, so their
    /// bit-identical results are structural, not coincidental.
    pub fn solve(&self, spec: &SolverSpec) -> Result<SolveResult, SessionError> {
        self.submit(spec)?.wait()
    }

    /// [`WasoSession::solve`] from a spec string (`"cbas-nd:budget=500"`),
    /// resolved and canonicalized against the session's registry.
    pub fn solve_str(&self, spec: &str) -> Result<SolveResult, SessionError> {
        let spec = self.registry.parse(spec)?;
        self.solve(&spec)
    }

    /// Submits a solve as a background **job** and returns its
    /// [`SolveHandle`] immediately. The handle can [`SolveHandle::wait`]
    /// for the result, [`SolveHandle::try_result`] without blocking,
    /// [`SolveHandle::cancel`] the job (it stops at the next stage
    /// boundary, returning its current incumbent tagged
    /// [`waso_algos::Termination::Cancelled`]), watch
    /// [`SolveHandle::progress`], and stream each improving incumbent via
    /// [`SolveHandle::incumbents`]. The spec's `deadline_ms=` /
    /// `patience=` knobs bound the job's latency without any handle
    /// interaction.
    ///
    /// Spec-level failures (unknown algorithm, unusable option,
    /// unsatisfiable constraints) surface here, before any thread is
    /// spawned. The job's result is **bit-identical** to
    /// [`WasoSession::solve`] with the same spec — `solve` *is*
    /// submit+wait.
    pub fn submit(&self, spec: &SolverSpec) -> Result<SolveHandle, SessionError> {
        let instance = self.shared_instance()?;
        let (task, handle) = self.prepare_job(&instance, spec)?;
        if let Some(task) = task {
            spawn_coordinators("waso-job", VecDeque::from([task]), 1);
        }
        Ok(handle)
    }

    /// Submits a slice of solve jobs and returns one [`SolveHandle`] per
    /// spec, in spec order. The instance is validated and cloned
    /// **once**; every pooled job runs over the **same** shared worker
    /// pool (no per-solve thread spawns, no per-solve graph clones); and
    /// up to [`WasoSession::batch_width`] jobs run concurrently — the
    /// pool's scheduler deals their stages across its workers, so a light
    /// job is never stuck behind a heavy one. Each job carries its own
    /// constraints via [`SolverSpec::require`], merged with the
    /// session's.
    ///
    /// Per-job failures (unbuildable spec, infeasible constraints) land
    /// in that job's handle; an instance-level failure fails the whole
    /// submission. Cancelling one handle never affects the others, and
    /// dropping a handle without waiting cancels its job (workers are
    /// pool-owned, so nothing leaks). A job's `deadline_ms=` clock starts
    /// when a coordinator picks it up, not at submit time — use
    /// `deadline_from_submit=`, which this call arms the moment it
    /// accepts the job (so queue wait counts against the SLA), or arm
    /// [`SolveHandle::control`] yourself.
    pub fn submit_batch(&self, specs: &[SolverSpec]) -> Result<Vec<SolveHandle>, SessionError> {
        let instance = self.shared_instance()?;
        // Jobs are prepared in slice order on the caller's thread, so the
        // lazily-sized session pool always takes its worker count from
        // the *first* pooled spec — exactly as sequential solves would —
        // and never from whichever concurrent job wins a race.
        let mut queue = VecDeque::with_capacity(specs.len());
        let mut handles = Vec::with_capacity(specs.len());
        for spec in specs {
            match self.prepare_job(&instance, spec) {
                Ok((task, handle)) => {
                    // A memo hit yields no task: the handle is pre-loaded.
                    if let Some(task) = task {
                        queue.push_back(task);
                    }
                    handles.push(handle);
                }
                Err(e) => handles.push(SolveHandle::failed(e)),
            }
        }
        let width = self.effective_batch_width(queue.len());
        spawn_coordinators("waso-batch", queue, width);
        Ok(handles)
    }

    /// Runs a slice of solve jobs to completion:
    /// [`WasoSession::submit_batch`] + [`SolveHandle::wait`] per handle.
    /// Results are returned in spec order and are bit-identical to
    /// calling [`WasoSession::solve`] once per spec — per-job RNG streams
    /// make the concurrency unobservable.
    pub fn solve_batch(
        &self,
        specs: &[SolverSpec],
    ) -> Result<Vec<Result<SolveResult, SessionError>>, SessionError> {
        Ok(self
            .submit_batch(specs)?
            .into_iter()
            .map(SolveHandle::wait)
            .collect())
    }

    /// [`WasoSession::solve_batch`] from spec strings; a string that does
    /// not parse fails its own slot, not the batch.
    pub fn solve_many<'a>(
        &self,
        specs: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<Result<SolveResult, SessionError>>, SessionError> {
        let instance = self.shared_instance()?;
        // Parse up front (cheap, deterministic order); parse failures
        // keep their slots, and job preparation still happens in slice
        // order for deterministic pool sizing.
        let mut queue = VecDeque::new();
        let mut handles = Vec::new();
        for spec in specs {
            match self
                .registry
                .parse(spec)
                .map_err(SessionError::from)
                .and_then(|spec| self.prepare_job(&instance, &spec))
            {
                Ok((task, handle)) => {
                    if let Some(task) = task {
                        queue.push_back(task);
                    }
                    handles.push(handle);
                }
                Err(e) => handles.push(SolveHandle::failed(e)),
            }
        }
        let width = self.effective_batch_width(queue.len());
        spawn_coordinators("waso-batch", queue, width);
        Ok(handles.into_iter().map(SolveHandle::wait).collect())
    }

    /// Builds one ready-to-run job: merges and validates constraints,
    /// resolves and builds the solver, binds the (lazily spawned) worker
    /// pool, and wires up the control/result/incumbent plumbing shared
    /// with the job's [`SolveHandle`].
    ///
    /// A memo hit short-circuits everything after validation: the
    /// returned task is `None` and the handle is pre-loaded with the
    /// cached result — bit-identical to the solve that produced it.
    fn prepare_job(
        &self,
        instance: &Arc<WasoInstance>,
        spec: &SolverSpec,
    ) -> Result<(Option<JobTask>, SolveHandle), SessionError> {
        // Union of session-level and spec-level required attendees,
        // first-mention order. The merged set is re-validated: the spec
        // half never went through `instance()`.
        let mut required = self.required.clone();
        for &v in &spec.required {
            if !required.contains(&v) {
                required.push(v);
            }
        }
        validate_required(instance, &required)?;

        let entry = self.registry.resolve(spec)?;
        if !required.is_empty() && !entry.capabilities.required_attendees {
            // Rejected up front, before paying for construction — and
            // re-checked by the solver itself as a backstop.
            return Err(SolveError::RequiredUnsupported { solver: entry.name }.into());
        }

        // Memo consult — after spec resolution (an entry can only exist
        // for a spec that once built, but the cheap capability checks
        // should fail loudly either way), before solver construction.
        let memo_key = self.memo_key(instance, spec, &required);
        if let Some(key) = &memo_key {
            let mut memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(result) = memo.entries.get(key).map(|e| e.result.clone()) {
                memo.stats.hits += 1;
                drop(memo);
                return Ok((None, SolveHandle::cached(result)));
            }
            memo.stats.misses += 1;
        }

        let mut solver = self.registry.build(spec)?;
        // Warm start: if a delta invalidated a cached entry for exactly
        // this (spec, constraints, seed), its old group seeds the solver
        // as the incumbent to beat (consumed once; solvers without
        // warm-start support ignore it). The incumbent is re-validated
        // against the *current* instance — a group the delta made
        // infeasible is dropped, it was only ever a hint.
        if let Some(key) = &memo_key {
            let stashed = self
                .memo
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .warm
                .remove(&(key.spec.clone(), key.required.clone(), key.seed));
            if let Some(nodes) = stashed {
                if let Ok(group) = Group::new(instance, nodes) {
                    solver.warm_start(&group);
                }
            }
        }
        // Pooled solve: run as a job of the session pool (attached, or
        // spawned on first use), so worker threads outlive — and are
        // shared by — every pooled solve, of this session and of any
        // other session attached to the same pool. The lock guards only
        // the Arc, never a solve: concurrent jobs proceed in parallel.
        let pool = solver.pool_threads().map(|t| self.session_pool(t));

        let control = Arc::new(JobControl::new());
        // `deadline_from_submit=` is armed *here*, the moment the job is
        // accepted — time spent queued behind other jobs counts against
        // it, unlike `deadline_ms=`, whose clock starts at solve start.
        // (The builder also folds the knob into the solver's own deadline
        // by earliest-wins, so direct `registry.build` users get it too;
        // this earlier arming strictly tightens that.)
        if let Some(ms) = spec.deadline_from_submit {
            control.arm_deadline(std::time::Duration::from_millis(ms));
        }
        let incumbents = control.take_incumbents();
        let (result_tx, result_rx) = channel();
        let task = JobTask {
            solver,
            instance: Arc::clone(instance),
            required,
            seed: self.seed,
            pool,
            control: Arc::clone(&control),
            result_tx,
            memo: memo_key.map(|key| (Arc::clone(&self.memo), key)),
        };
        let handle = SolveHandle {
            control,
            incumbents,
            result_rx,
            result: None,
        };
        Ok((Some(task), handle))
    }

    /// The memo key for a solve, or `None` when the solve is not
    /// cacheable: wall-clock-bounded specs (`deadline_ms=`,
    /// `deadline_from_submit=`) can stop anywhere, so their results are
    /// not a pure function of the key.
    fn memo_key(
        &self,
        instance: &WasoInstance,
        spec: &SolverSpec,
        required: &[NodeId],
    ) -> Option<MemoKey> {
        if spec.deadline_ms.is_some() || spec.deadline_from_submit.is_some() {
            return None;
        }
        let digest = {
            let mut cache = self
                .fingerprint_cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            cache
                .get_or_insert_with(|| InstanceFingerprint::of(instance))
                .digest()
        };
        let mut req: Vec<u32> = required.iter().map(|v| v.0).collect();
        req.sort_unstable();
        Some(MemoKey {
            digest,
            spec: spec.to_string(),
            required: req,
            seed: self.seed,
        })
    }

    /// A snapshot of the session's memo counters (hits, misses,
    /// delta invalidations).
    pub fn memo_stats(&self) -> MemoStats {
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
    }

    /// Applies a [`GraphDelta`] to the session's graph **in place**:
    /// re-fingerprints incrementally (only the delta's endpoints are
    /// re-hashed), and sweeps the memo — entries whose group or one-hop
    /// frontier touches the delta are invalidated (their groups stashed
    /// as warm-start incumbents for the next matching solve), every
    /// other entry survives, re-keyed to the new fingerprint.
    ///
    /// The delta is validated first and a rejected delta
    /// ([`SessionError::Delta`]) changes nothing. Node count and
    /// identity never change: a cached group means the same attendees
    /// before and after any number of deltas.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<(), SessionError> {
        let new_graph = delta.apply(&self.graph)?;

        // The pre-delta fingerprint, cached or recomputed — the memo
        // generation to sweep. Unavailable only when the session cannot
        // build an instance at all (`k` unset, bad λ): then no solve has
        // run under this configuration and there is nothing to sweep.
        let old_fp = match self
            .fingerprint_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            Some(fp) => Some(fp),
            None => self.instance().ok().map(|i| InstanceFingerprint::of(&i)),
        };

        self.graph = new_graph;
        self.invalidate_instance();

        let Some(old_fp) = old_fp else { return Ok(()) };
        let old_digest = old_fp.digest();

        // Incremental re-fingerprint: the λ transform and the node hash
        // are both node-local, so only the delta's endpoints re-hash —
        // O(Σ degree(endpoint)), not O(graph).
        let instance = self.shared_instance()?;
        let mut new_fp = old_fp;
        for v in delta.touched() {
            new_fp.update_node(&instance, v);
        }
        let new_digest = new_fp.digest();
        *self
            .fingerprint_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = Some(new_fp);

        // Memo sweep over the pre-delta generation. Entries under other
        // digests (older configurations) are left alone: their keys can
        // only match again if the configuration reverts *and* the graph
        // fingerprints back to that exact state.
        let touched: Vec<u32> = delta.touched().iter().map(|v| v.0).collect();
        let mut memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
        let keys: Vec<MemoKey> = memo
            .entries
            .keys()
            .filter(|k| k.digest == old_digest)
            .cloned()
            .collect();
        for key in keys {
            let Some(entry) = memo.entries.remove(&key) else {
                continue;
            };
            if touched.iter().any(|t| entry.touch.binary_search(t).is_ok()) {
                memo.stats.invalidated += 1;
                memo.warm.insert(
                    (key.spec, key.required, key.seed),
                    entry.result.group.nodes().to_vec(),
                );
            } else {
                memo.entries.insert(
                    MemoKey {
                        digest: new_digest,
                        ..key
                    },
                    entry,
                );
            }
        }
        Ok(())
    }

    /// The session's pool, spawning a private one sized
    /// `pool_threads.unwrap_or(spec_threads)` on first pooled use.
    fn session_pool(&self, spec_threads: usize) -> Arc<SharedPool> {
        let mut guard = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(guard.get_or_insert_with(|| {
            Arc::new(SharedPool::new(self.pool_threads.unwrap_or(spec_threads)))
        }))
    }

    /// A [`waso_algos::PoolStats`] health snapshot of the session's
    /// worker pool (attached or lazily spawned), or `None` before any
    /// pooled solve has needed one.
    pub fn pool_stats(&self) -> Option<waso_algos::PoolStats> {
        self.pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|p| p.stats())
    }

    /// The coordinator-crew width for a batch of `jobs` jobs: the
    /// [`WasoSession::batch_width`] pin, else `WASO_BATCH_WIDTH`, else
    /// `max(2, available_parallelism)` — capped by the job count.
    fn effective_batch_width(&self, jobs: usize) -> usize {
        let width = self
            .batch_width
            .or_else(|| {
                std::env::var("WASO_BATCH_WIDTH")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .map(|w: usize| w.max(1))
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|c| c.get())
                    .unwrap_or(1)
                    .max(2)
            });
        width.min(jobs).max(1)
    }
}

/// One prepared solve job: everything its coordinator thread needs, fully
/// owned (the thread outlives the `submit` call's borrows).
struct JobTask {
    solver: Box<dyn Solver + Send>,
    instance: Arc<WasoInstance>,
    required: Vec<NodeId>,
    seed: u64,
    /// The shared pool the solve runs over, when its spec asks for one.
    pool: Option<Arc<SharedPool>>,
    control: Arc<JobControl>,
    result_tx: Sender<Result<SolveResult, SessionError>>,
    /// Memo insertion slot: when present, a cleanly-completed result is
    /// cached under `key`, with its touch set computed over the solved
    /// instance.
    memo: Option<(Arc<Mutex<SolveMemo>>, MemoKey)>,
}

impl JobTask {
    /// Runs the solve and reports through the job's channels. Never
    /// panics past itself: the control is marked finished and the result
    /// sent (or the sender dropped) no matter how the solve ends.
    fn run(mut self) {
        let outcome = self
            .solver
            .solve_controlled(
                &self.instance,
                &self.required,
                self.seed,
                self.pool.as_deref(),
                &self.control,
            )
            .map_err(SessionError::from);
        if let Ok(result) = &outcome {
            debug_assert!(
                self.required.iter().all(|&v| result.group.contains(v)),
                "solver {} violated the required-attendee contract",
                self.solver.name()
            );
        }
        // Memoize clean completions only: a cancelled or deadline-cut
        // result is whatever the job had when it was stopped, not a pure
        // function of (instance, spec, seed) — serving it to a later
        // uninterrupted solve would break the bit-identity contract.
        if let (Some((memo, key)), Ok(result)) = (&self.memo, &outcome) {
            if result.stats.termination == Termination::Completed {
                let touch = touch_set(&self.instance, result.group.nodes());
                let entry = MemoEntry {
                    result: result.clone(),
                    touch,
                };
                memo.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .insert(key.clone(), entry);
            }
        }
        // Release the job's resources — above all its pool Arc — BEFORE
        // publishing the result: a caller that has observed the outcome
        // must also observe the job's references gone (e.g. a session
        // dropped right after a batch asserts the pool was released).
        self.memo = None;
        self.pool = None;
        drop(self.solver);
        self.control.finish();
        let _ = self.result_tx.send(outcome);
    }
}

/// Spawns `width` detached coordinator threads draining `queue` in FIFO
/// order. Each coordinator drives whole jobs; per-sample parallelism
/// lives in the worker pool the jobs share. A panicking job (a solver
/// bug) is contained: its waiter sees the death through the dropped
/// result sender, and the coordinator moves on to the next queued job —
/// one bad job cannot starve the rest of a batch.
fn spawn_coordinators(name: &str, queue: VecDeque<JobTask>, width: usize) {
    if queue.is_empty() {
        return;
    }
    let queue = Arc::new(Mutex::new(queue));
    for c in 0..width.max(1) {
        let worker = Arc::clone(&queue);
        let spawned = std::thread::Builder::new()
            .name(format!("{name}-{c}"))
            .spawn(move || drain_jobs(&worker));
        if spawned.is_err() {
            // Thread exhaustion. The queued jobs still have waiters, so
            // they must run: whatever coordinators did spawn keep
            // draining, and this thread works the remainder inline
            // instead of aborting the process.
            drain_jobs(&queue);
            return;
        }
    }
}

/// One coordinator's work loop: pop and run jobs until the queue drains.
fn drain_jobs(queue: &Mutex<VecDeque<JobTask>>) {
    loop {
        let task = queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        match task {
            Some(task) => {
                // Contain a panicking solve to its own job: the
                // unwind payload dies here, the job's waiter sees
                // a dropped sender, and this coordinator keeps
                // draining the queue. The control must still be
                // finished on the unwind path, or incumbents()
                // iterators would block forever and progress()
                // would report the dead job as running.
                let control = Arc::clone(&task.control);
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.run())).is_err() {
                    control.finish();
                }
            }
            None => return,
        }
    }
}

/// A submitted solve job: the caller's half of the submit/poll/cancel
/// surface (see [`WasoSession::submit`]).
///
/// Dropping a handle without waiting **cancels** its job — a handle is
/// the only way to receive the result, so an abandoned job would be pure
/// waste (the serving analogy: the client hung up). The cancel stops the
/// job at its next stage boundary; worker threads belong to the session's
/// pool and are never leaked either way.
#[derive(Debug)]
pub struct SolveHandle {
    control: Arc<JobControl>,
    incumbents: Receiver<Incumbent>,
    result_rx: Receiver<Result<SolveResult, SessionError>>,
    /// The received outcome, cached so `try_result` + `wait` compose.
    result: Option<Result<SolveResult, SessionError>>,
}

impl SolveHandle {
    /// A handle whose job failed before it could start (spec-level batch
    /// errors): the result is pre-loaded, the control already finished.
    fn failed(error: SessionError) -> Self {
        let control = Arc::new(JobControl::new());
        let incumbents = control.take_incumbents();
        control.finish();
        let (result_tx, result_rx) = channel();
        let _ = result_tx.send(Err(error));
        Self {
            control,
            incumbents,
            result_rx,
            result: None,
        }
    }

    /// A handle whose job was answered from the session memo: the cached
    /// result is pre-loaded (bit-identical to the solve that produced
    /// it), the control reports the original solve's final progress, and
    /// no thread is spawned — `wait`/`try_result` return in O(1).
    fn cached(result: SolveResult) -> Self {
        let control = Arc::new(JobControl::new());
        let incumbents = control.take_incumbents();
        control.publish_stage(
            result.stats.stages,
            result.stats.samples_drawn,
            Some((result.group.willingness(), result.group.nodes())),
        );
        control.finish();
        let (result_tx, result_rx) = channel();
        let _ = result_tx.send(Ok(result));
        Self {
            control,
            incumbents,
            result_rx,
            result: None,
        }
    }

    /// Blocks until the job finishes and returns its result. Bit-identical
    /// to what the blocking [`WasoSession::solve`] returns — `solve` *is*
    /// this call.
    ///
    /// # Panics
    ///
    /// If the job's coordinator thread died without reporting (a solver
    /// panic) — the same loud failure the blocking call would have been.
    pub fn wait(mut self) -> Result<SolveResult, SessionError> {
        if self.result.is_none() {
            match self.result_rx.recv() {
                Ok(outcome) => self.result = Some(outcome),
                // audit:allow(P2): documented `# Panics` contract — re-raises a solver panic; the serve waiter thread shields with catch_unwind
                Err(_) => panic!("solve job died without reporting a result"),
            }
        }
        // audit:allow(P2): `result` was populated on both branches above
        self.result.take().expect("result cached above")
    }

    /// Non-blocking poll: the job's result if it has finished, `None`
    /// while it is still running. Repeatable; composes with a later
    /// [`SolveHandle::wait`].
    ///
    /// # Panics
    ///
    /// If the job's coordinator thread died without reporting (a solver
    /// panic) — the same loud failure [`SolveHandle::wait`] raises, so a
    /// poll-only client cannot mistake a dead job for a running one.
    pub fn try_result(&mut self) -> Option<Result<SolveResult, SessionError>> {
        if self.result.is_none() {
            match self.result_rx.try_recv() {
                Ok(outcome) => self.result = Some(outcome),
                Err(std::sync::mpsc::TryRecvError::Empty) => {}
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    panic!("solve job died without reporting a result")
                }
            }
        }
        self.result.clone()
    }

    /// Requests cancellation: the job stops dealing work at its next
    /// stage boundary and its result becomes the current incumbent,
    /// tagged [`waso_algos::Termination::Cancelled`] (or
    /// [`SolveError::NoIncumbent`] if no stage had completed).
    /// Idempotent; a no-op once the job finished.
    pub fn cancel(&self) {
        self.control.cancel();
    }

    /// A point-in-time progress snapshot: stages done, samples spent,
    /// current incumbent willingness, finished flag.
    pub fn progress(&self) -> JobProgress {
        self.control.progress()
    }

    /// The job's [`JobControl`] — for arming an extra deadline
    /// ([`JobControl::arm_deadline`] covers queue wait too, unlike the
    /// spec's `deadline_ms=`, whose clock starts at solve start) or for
    /// sharing cancellation with other owners.
    pub fn control(&self) -> &Arc<JobControl> {
        &self.control
    }

    /// Streams the job's improving incumbents: one [`Incumbent`] per
    /// stage that raised the best-so-far willingness, strictly
    /// increasing. The iterator **blocks** between stages and ends when
    /// the job finishes — drain it from the thread that watches the
    /// solve, and call [`SolveHandle::wait`] afterwards for the final
    /// result.
    pub fn incumbents(&self) -> std::sync::mpsc::Iter<'_, Incumbent> {
        self.incumbents.iter()
    }

    /// The best incumbent published so far — a **latest-only watch
    /// view**. Unlike [`SolveHandle::incumbents`], which queues every
    /// improvement until someone drains it, this is a single overwritten
    /// cell: a slow poller (a serving front door relaying progress to a
    /// remote client) always reads the current best and can never back
    /// the job up or miss the final value. `None` until the first stage
    /// completes with a feasible group.
    pub fn latest_incumbent(&self) -> Option<Incumbent> {
        self.control.latest_incumbent()
    }
}

impl Drop for SolveHandle {
    /// Abandoning a handle cancels its job (see the type docs). A
    /// finished job — including one just consumed by
    /// [`SolveHandle::wait`] — is left untouched.
    fn drop(&mut self) {
        if !self.control.progress().finished {
            self.control.cancel();
        }
    }
}

/// Bounds, duplicate and size checks for a required-attendee list.
fn validate_required(instance: &WasoInstance, required: &[NodeId]) -> Result<(), SessionError> {
    let n = instance.graph().num_nodes() as u32;
    let mut seen = std::collections::BTreeSet::new();
    for &v in required {
        if v.0 >= n {
            return Err(CoreError::UnknownNode(v.0).into());
        }
        if !seen.insert(v.0) {
            return Err(CoreError::DuplicateMember(v.0).into());
        }
    }
    if required.len() > instance.k() {
        return Err(CoreError::WrongSize {
            got: required.len(),
            want: instance.k(),
        }
        .into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    fn path4() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        b.build()
    }

    #[test]
    fn session_solves_with_any_registered_spec() {
        let session = WasoSession::new(path4()).k(3);
        for spec in ["dgreedy", "cbas:budget=60,stages=2", "exact"] {
            let res = session.solve_str(spec).unwrap();
            assert_eq!(res.group.len(), 3, "{spec}");
        }
    }

    #[test]
    fn missing_k_is_an_error() {
        let err = WasoSession::new(path4()).solve_str("dgreedy").unwrap_err();
        assert_eq!(err, SessionError::GroupSizeNotSet);
    }

    #[test]
    fn required_attendees_are_enforced_or_rejected() {
        let session = WasoSession::new(path4()).k(3).require([NodeId(0)]);
        // CBAS-ND honours the requirement.
        let res = session.solve_str("cbas-nd:budget=60,stages=2").unwrap();
        assert!(res.group.contains(NodeId(0)));
        // CBAS cannot guarantee it — rejected, not ignored.
        let err = session.solve_str("cbas:budget=60").unwrap_err();
        assert_eq!(
            err,
            SessionError::Solve(SolveError::RequiredUnsupported { solver: "cbas" })
        );
    }

    #[test]
    fn spec_level_requirements_merge_with_session_ones() {
        let session = WasoSession::new(path4()).k(3).require([NodeId(0)]);
        let res = session
            .solve(
                &SolverSpec::cbas_nd()
                    .budget(80)
                    .stages(2)
                    .require([NodeId(2)]),
            )
            .unwrap();
        assert!(res.group.contains(NodeId(0)));
        assert!(res.group.contains(NodeId(2)));
    }

    #[test]
    fn invalid_required_sets_fail_validation() {
        let g = path4();
        let err = WasoSession::new(g.clone())
            .k(2)
            .require([NodeId(99)])
            .solve_str("cbas-nd")
            .unwrap_err();
        assert_eq!(err, SessionError::Core(CoreError::UnknownNode(99)));

        let err = WasoSession::new(g.clone())
            .k(2)
            .require([NodeId(1), NodeId(1)])
            .solve_str("cbas-nd")
            .unwrap_err();
        assert_eq!(err, SessionError::Core(CoreError::DuplicateMember(1)));

        let err = WasoSession::new(g)
            .k(2)
            .require([NodeId(0), NodeId(1), NodeId(2)])
            .solve_str("cbas-nd")
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Core(CoreError::WrongSize { got: 3, want: 2 })
        );
    }

    #[test]
    fn disconnected_mode_reaches_separated_optima() {
        // Two components; the best pair straddles them.
        let mut b = GraphBuilder::new();
        let a = b.add_node(10.0);
        let c = b.add_node(9.0);
        let d = b.add_node(1.0);
        b.add_edge_symmetric(a, d, 0.1).unwrap();
        let _ = c;
        let session = WasoSession::new(b.build()).k(2).disconnected();
        let res = session.solve_str("dgreedy").unwrap();
        assert_eq!(res.group.willingness(), 19.0);
    }

    #[test]
    fn lambda_rescores_the_instance() {
        let session = WasoSession::new(path4()).k(3).lambda_uniform(1.0);
        // λ = 1 everywhere: tightness vanishes, best trio is {v1,v2,v3}
        // by pure interest (8+7+6).
        let res = session.solve_str("exact").unwrap();
        assert_eq!(res.group.willingness(), 21.0);

        let err = WasoSession::new(path4())
            .k(3)
            .lambda(vec![0.5; 3])
            .solve_str("dgreedy")
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Core(CoreError::BadParameterLength { got: 3, want: 4 })
        );
    }

    #[test]
    fn seed_policy_is_deterministic_and_overridable() {
        let g = waso_datasets::synthetic::facebook_like_n(120, 3);
        let session = WasoSession::new(g.clone()).k(6);
        let a = session.solve_str("cbas-nd:budget=80,stages=3").unwrap();
        let b = session.solve_str("cbas-nd:budget=80,stages=3").unwrap();
        assert_eq!(a.group, b.group, "default seed is fixed");

        let reseeded = WasoSession::new(g).k(6).seed(7);
        let c = reseeded.solve_str("cbas-nd:budget=80,stages=3").unwrap();
        // Different seed explores differently (stats differ even if the
        // answer coincides).
        assert!(c.group.validate(&reseeded.instance().unwrap()).is_ok());
    }

    #[test]
    fn out_of_range_spec_strings_error_instead_of_panicking() {
        // A user-supplied `cbas-nd:rho=0` used to assert inside the
        // engine; it must surface as a typed spec error.
        let session = WasoSession::new(path4()).k(3);
        for (spec, key) in [
            ("cbas-nd:rho=0", "rho"),
            ("cbas-nd:budget=60,rho=1.5", "rho"),
            ("cbas-nd-g:smoothing=-0.5", "smoothing"),
            ("cbas-nd-par:threads=2,smoothing=1.5", "smoothing"),
        ] {
            match session.solve_str(spec) {
                Err(SessionError::Spec(SpecError::OutOfRange { key: k, .. })) => {
                    assert_eq!(k, key, "{spec}")
                }
                other => panic!("{spec}: expected OutOfRange, got {:?}", other.err()),
            }
        }
    }

    #[test]
    fn batch_solves_match_sequential_solves() {
        let g = waso_datasets::synthetic::facebook_like_n(100, 3);
        let specs = vec![
            SolverSpec::cbas_nd().budget(60).stages(3).threads(2),
            SolverSpec::cbas().budget(60).stages(2).threads(3),
            SolverSpec::dgreedy(),
            SolverSpec::cbas_nd()
                .budget(60)
                .stages(3)
                .threads(4)
                .require([NodeId(0)]),
        ];
        let batch_session = WasoSession::new(g.clone()).k(5).seed(3);
        let batch = batch_session.solve_batch(&specs).unwrap();
        assert_eq!(batch.len(), specs.len());
        for (spec, outcome) in specs.iter().zip(&batch) {
            // Fresh session per spec: the per-solve baseline the batch
            // must be bit-identical to.
            let alone = WasoSession::new(g.clone())
                .k(5)
                .seed(3)
                .solve(spec)
                .unwrap();
            let batched = outcome.as_ref().unwrap();
            assert_eq!(batched.group, alone.group, "{spec}");
            assert_eq!(batched.stats.samples_drawn, alone.stats.samples_drawn);
        }
        let constrained = batch[3].as_ref().unwrap();
        assert!(constrained.group.contains(NodeId(0)));
    }

    #[test]
    fn batch_jobs_fail_individually_not_collectively() {
        let session = WasoSession::new(path4()).k(3);
        let results = session
            .solve_many(["dgreedy", "nope-nope", "cbas:budget=40,rho=1", "exact"])
            .unwrap();
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(SessionError::Spec(SpecError::UnknownAlgorithm { .. }))
        ));
        assert!(matches!(
            results[2],
            Err(SessionError::Spec(SpecError::UnsupportedOption { .. }))
        ));
        assert!(results[3].is_ok());
    }

    #[test]
    fn session_pool_is_reused_across_solves() {
        // Many pooled solves through one session: all must succeed and
        // match a fresh session's answers (the pool and the cached
        // instance are invisible in results).
        let g = waso_datasets::synthetic::facebook_like_n(80, 3);
        let session = WasoSession::new(g.clone()).k(4).seed(9).pool_threads(3);
        let spec_a = SolverSpec::cbas_nd().budget(50).stages(2).threads(8);
        let spec_b = SolverSpec::cbas().budget(50).stages(2).threads(1);
        for _ in 0..3 {
            let a = session.solve(&spec_a).unwrap();
            let b = session.solve(&spec_b).unwrap();
            let fresh = WasoSession::new(g.clone()).k(4).seed(9);
            assert_eq!(a.group, fresh.solve(&spec_a).unwrap().group);
            assert_eq!(b.group, fresh.solve(&spec_b).unwrap().group);
        }
    }

    #[test]
    fn sessions_share_one_pool_across_different_graphs() {
        // Two sessions over *different* instances attached to one
        // process-wide pool: every solve matches a fresh private-pool
        // session bit-for-bit, and no worker is ever respawned.
        let pool = Arc::new(SharedPool::new(2));
        let g1 = waso_datasets::synthetic::facebook_like_n(60, 3);
        let g2 = waso_datasets::synthetic::facebook_like_n(90, 3);
        let s1 = WasoSession::new(g1.clone())
            .k(4)
            .seed(5)
            .attach_pool(Arc::clone(&pool));
        let s2 = WasoSession::new(g2.clone())
            .k(5)
            .seed(6)
            .attach_pool(Arc::clone(&pool));
        let spec = SolverSpec::cbas_nd().budget(50).stages(2).threads(3);
        for _ in 0..2 {
            let a = s1.solve(&spec).unwrap();
            let b = s2.solve(&spec).unwrap();
            let fresh1 = WasoSession::new(g1.clone()).k(4).seed(5);
            let fresh2 = WasoSession::new(g2.clone()).k(5).seed(6);
            assert_eq!(a.group, fresh1.solve(&spec).unwrap().group);
            assert_eq!(b.group, fresh2.solve(&spec).unwrap().group);
        }
        assert_eq!(pool.respawned_workers(), 0);
        drop((s1, s2));
        assert_eq!(Arc::strong_count(&pool), 1, "sessions release the pool");
    }

    #[test]
    fn concurrent_batches_on_one_attached_pool_match_sequential_solves() {
        let pool = Arc::new(SharedPool::new(3));
        let g = waso_datasets::synthetic::facebook_like_n(80, 3);
        let specs = vec![
            SolverSpec::cbas_nd().budget(60).stages(3).threads(2),
            SolverSpec::cbas().budget(60).stages(2).threads(4),
            SolverSpec::dgreedy(),
            SolverSpec::cbas_nd()
                .budget(40)
                .stages(2)
                .threads(1)
                .require([NodeId(0)]),
        ];
        let session = WasoSession::new(g.clone())
            .k(5)
            .seed(11)
            .attach_pool(Arc::clone(&pool));
        let batch = session.solve_batch(&specs).unwrap();
        for (spec, outcome) in specs.iter().zip(&batch) {
            let alone = WasoSession::new(g.clone())
                .k(5)
                .seed(11)
                .solve(spec)
                .unwrap();
            let batched = outcome.as_ref().unwrap();
            assert_eq!(batched.group, alone.group, "{spec}");
            assert_eq!(batched.stats.samples_drawn, alone.stats.samples_drawn);
        }
    }

    #[test]
    fn deadline_from_submit_is_armed_at_submit_and_bounds_the_job() {
        // A solve whose budget would take far longer than the deadline:
        // the submit-anchored clock must stop it well before the budget
        // is spent, even though no handle interaction ever happens.
        let g = waso_datasets::synthetic::facebook_like_n(150, 3);
        let session = WasoSession::new(g).k(6);
        let spec = SolverSpec::cbas_nd()
            .budget(3_000_000)
            .stages(1)
            .deadline_from_submit(40);
        let t0 = std::time::Instant::now();
        let outcome = session.solve(&spec);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "deadline_from_submit did not bound the solve ({:?})",
            t0.elapsed()
        );
        // A 40 ms deadline on a 3M-sample stage trips mid-stage; the
        // abandoned stage never merges, so there is no incumbent.
        match outcome {
            Err(SessionError::Solve(SolveError::NoIncumbent { reason })) => {
                assert_eq!(reason, waso_algos::Termination::Deadline)
            }
            other => panic!("expected a deadline stop, got {other:?}"),
        }
    }

    #[test]
    fn latest_incumbent_is_readable_without_draining_the_stream() {
        let g = waso_datasets::synthetic::facebook_like_n(100, 3);
        let session = WasoSession::new(g).k(5).seed(3);
        let mut handle = session
            .submit(&SolverSpec::cbas_nd().budget(400).stages(4))
            .unwrap();
        // Never touch `incumbents()` — the queue fills, the watch view
        // must still hold the final best.
        let result = loop {
            if let Some(outcome) = handle.try_result() {
                break outcome.unwrap();
            }
            std::thread::yield_now();
        };
        let latest = handle.latest_incumbent().expect("stages published");
        // The incumbent carries the engine's running score; the group
        // recomputes from scratch — equal up to summation order.
        assert!((latest.willingness - result.group.willingness()).abs() < 1e-9);
        assert_eq!(latest.nodes.len(), result.group.len());
        assert!(latest.nodes.iter().all(|&v| result.group.contains(v)));
    }

    #[test]
    fn unknown_algorithms_name_the_known_set() {
        let err = WasoSession::new(path4())
            .k(2)
            .solve_str("magic")
            .unwrap_err();
        match err {
            SessionError::Spec(SpecError::UnknownAlgorithm { known, .. }) => {
                assert!(known.contains(&"exact"), "exact is registered");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! [`WasoSession`] — the one-stop facade for solving WASO instances.
//!
//! A session owns everything around the solver that callers used to
//! hand-roll: instance validation (group size, λ weights, connectivity
//! mode), the seed policy, constraint enforcement (required attendees are
//! guaranteed or the combination is *rejected* — never silently dropped),
//! and result reporting. Solvers are chosen by [`SolverSpec`] and built
//! through the [`SolverRegistry`], so a session works identically for
//! every registered algorithm, including ones registered after the fact.
//!
//! Under the hood the staged specs (`cbas`, `cbas-nd`, `cbas-nd-g`,
//! `cbas-nd-par`, and any `threads=N` variant) all resolve to the single
//! `waso_algos::engine::StagedEngine`; a spec's `threads` knob selects
//! the engine's pooled execution backend without changing the answer —
//! solves are bit-identical for every thread count, so the session's
//! reproducibility guarantee (same `(instance, spec, seed)` → same group)
//! holds regardless of parallelism.
//!
//! Pooled solves share one [`SharedPool`]: worker threads are spawned on
//! first use (or attached via [`WasoSession::attach_pool`], in which case
//! any number of sessions share one process-wide pool) and reused by
//! every later solve; the validated instance is cloned once and shared.
//! For many solves in one go, [`WasoSession::solve_batch`] /
//! [`WasoSession::solve_many`] run a slice of spec jobs **concurrently**
//! over that shared state with per-job error reporting — bit-identical
//! to solving each spec alone, in the slice's order.
//!
//! ```
//! use waso::prelude::*;
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(0.8);
//! let c = b.add_node(0.5);
//! let d = b.add_node(0.9);
//! b.add_edge_symmetric(a, c, 0.7).unwrap();
//! b.add_edge_symmetric(c, d, 0.4).unwrap();
//!
//! let session = WasoSession::new(b.build()).k(2).seed(42);
//! let result = session.solve(&SolverSpec::cbas_nd().budget(200).stages(4)).unwrap();
//! assert_eq!(result.group.len(), 2);
//! assert!((result.group.willingness() - 2.7).abs() < 1e-9);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use waso_algos::{SharedPool, SolveError, SolveResult, SolverRegistry, SolverSpec, SpecError};
use waso_core::{CoreError, WasoInstance};
use waso_graph::{NodeId, SocialGraph};

/// The session's default seed — solves are reproducible out of the box,
/// and explicitly seeded when exploration is wanted.
pub const DEFAULT_SEED: u64 = 42;

/// The fully-populated solver registry: the `waso-algos` family
/// ([`SolverRegistry::builtin`]) plus `waso-exact`'s branch-and-bound.
/// This is the table behind every [`WasoSession`], the `waso-solve` CLI,
/// and the `waso-bench` figure drivers.
pub fn registry() -> SolverRegistry {
    let mut r = SolverRegistry::builtin();
    waso_exact::register_exact(&mut r);
    r
}

/// Why a session could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// [`WasoSession::k`] was never called.
    GroupSizeNotSet,
    /// Instance construction or validation failed (bad `k`, bad λ,
    /// unknown/duplicate required attendee).
    Core(CoreError),
    /// The spec did not resolve to a buildable solver.
    Spec(SpecError),
    /// The solver ran and failed (infeasible, or a constraint it cannot
    /// honour).
    Solve(SolveError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::GroupSizeNotSet => {
                write!(
                    f,
                    "group size not set — call WasoSession::k(...) before solving"
                )
            }
            SessionError::Core(e) => write!(f, "invalid instance: {e}"),
            SessionError::Spec(e) => write!(f, "unusable solver spec: {e}"),
            SessionError::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> Self {
        SessionError::Core(e)
    }
}

impl From<SpecError> for SessionError {
    fn from(e: SpecError) -> Self {
        SessionError::Spec(e)
    }
}

impl From<SolveError> for SessionError {
    fn from(e: SolveError) -> Self {
        SessionError::Solve(e)
    }
}

/// A configured solving context: graph + constraints + seed policy +
/// registry. Build once, solve with as many specs as you like.
///
/// Sessions hold two lazily-created, solve-to-solve caches:
///
/// * the **validated instance** (`Arc`) — built on the first solve and
///   shared by every later one (and by every job of a
///   [`WasoSession::solve_batch`]), so the graph is validated and cloned
///   once per session instead of once per solve;
/// * the **worker pool** ([`SharedPool`]) — attached up front
///   ([`WasoSession::attach_pool`], possibly shared with other sessions
///   of the process) or spawned on the first solve whose spec asks for
///   threads, and reused by every pooled solve after it, amortizing
///   thread creation across the session (§5.3.1 at serving scale). The
///   pool is self-healing (a panicked worker is respawned and its
///   in-flight samples re-drawn) and its scheduler runs jobs from any
///   number of sessions concurrently. The determinism contract makes all
///   of that unobservable in results: solves are bit-identical for every
///   worker count and tenant mix, so the session guarantee (same
///   `(instance, spec, seed)` → same group) is unaffected.
#[derive(Debug)]
pub struct WasoSession {
    graph: SocialGraph,
    k: Option<usize>,
    required: Vec<NodeId>,
    connectivity: bool,
    lambda: Option<Vec<f64>>,
    seed: u64,
    registry: SolverRegistry,
    /// Pinned worker count for a lazily-spawned session pool; `None`
    /// sizes it from the first pooled spec. Ignored once a pool is
    /// attached.
    pool_threads: Option<usize>,
    /// The validated instance, built once per session configuration.
    instance_cache: Mutex<Option<Arc<WasoInstance>>>,
    /// The worker pool every pooled solve of this session runs over —
    /// attached, or spawned on first pooled use.
    pool: Mutex<Option<Arc<SharedPool>>>,
}

impl WasoSession {
    /// A session over `graph` with the full [`registry`], connectivity
    /// required, no constraints, and the [`DEFAULT_SEED`].
    pub fn new(graph: SocialGraph) -> Self {
        Self {
            graph,
            k: None,
            required: Vec::new(),
            connectivity: true,
            lambda: None,
            seed: DEFAULT_SEED,
            registry: registry(),
            pool_threads: None,
            instance_cache: Mutex::new(None),
            pool: Mutex::new(None),
        }
    }

    /// Forgets the cached instance after a configuration change.
    fn invalidate_instance(&mut self) {
        *self.instance_cache.get_mut().expect("unpoisoned cache") = None;
    }

    /// Sets the group size `k` (mandatory).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self.invalidate_instance();
        self
    }

    /// Adds attendees that must appear in every answer. Enforced
    /// *uniformly*: solvers that cannot guarantee membership reject the
    /// solve ([`SolveError::RequiredUnsupported`]) instead of ignoring the
    /// constraint.
    pub fn require(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.required.extend(nodes);
        self
    }

    /// Drops the connectivity constraint (the §2.2 WASO-dis variant).
    pub fn disconnected(mut self) -> Self {
        self.connectivity = false;
        self.invalidate_instance();
        self
    }

    /// Applies per-node λ weights (footnote 7): `η̃ = λη`,
    /// `τ̃_{i,·} = (1-λ_i)τ_{i,·}`. Validated at solve time.
    pub fn lambda(mut self, lambda: Vec<f64>) -> Self {
        self.lambda = Some(lambda);
        self.invalidate_instance();
        self
    }

    /// Applies one λ to every node.
    pub fn lambda_uniform(mut self, l: f64) -> Self {
        self.lambda = Some(vec![l; self.graph.num_nodes()]);
        self.invalidate_instance();
        self
    }

    /// Sets the seed every solve derives its randomness from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the session pool's worker count. Without this, the pool is
    /// sized by the first pooled spec's `threads` value. Either way the
    /// answers are bit-identical — the count only affects wall-clock.
    /// Ignored when a pool is [`WasoSession::attach_pool`]ed.
    pub fn pool_threads(mut self, threads: usize) -> Self {
        self.pool_threads = Some(threads.max(1));
        self
    }

    /// Attaches a (possibly process-wide) [`SharedPool`]: every pooled
    /// solve of this session runs as a job of `pool` instead of a
    /// session-private one. Hand clones of the same `Arc` to any number
    /// of sessions — the pool's scheduler runs their jobs concurrently,
    /// and results stay bit-identical to solving each alone.
    pub fn attach_pool(mut self, pool: Arc<SharedPool>) -> Self {
        *self.pool.get_mut().unwrap_or_else(PoisonError::into_inner) = Some(pool);
        self
    }

    /// Replaces the solver registry (to add custom solvers or restrict
    /// the available set).
    pub fn with_registry(mut self, registry: SolverRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The registry this session resolves specs against.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// The graph under optimization (λ not yet applied).
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Builds and validates the [`WasoInstance`] this session describes.
    pub fn instance(&self) -> Result<WasoInstance, SessionError> {
        let k = self.k.ok_or(SessionError::GroupSizeNotSet)?;
        let graph = match &self.lambda {
            Some(l) => waso_core::instance::apply_lambda(&self.graph, l)?,
            None => self.graph.clone(),
        };
        let instance = if self.connectivity {
            WasoInstance::new(graph, k)?
        } else {
            WasoInstance::without_connectivity(graph, k)?
        };
        validate_required(&instance, &self.required)?;
        Ok(instance)
    }

    /// The session's validated instance, built and cloned **once** and
    /// shared by every solve (the batch API's "validate once" half).
    fn shared_instance(&self) -> Result<Arc<WasoInstance>, SessionError> {
        let mut cache = self.instance_cache.lock().expect("unpoisoned cache");
        if let Some(instance) = cache.as_ref() {
            return Ok(Arc::clone(instance));
        }
        let instance = Arc::new(self.instance()?);
        *cache = Some(Arc::clone(&instance));
        Ok(instance)
    }

    /// Solves with the given spec: validates the instance (cached across
    /// solves), merges the session's and the spec's required attendees,
    /// rejects spec/solver combinations that cannot honour them, and runs
    /// the solver under the session's seed policy — over the session-held
    /// worker pool when the spec asks for threads.
    pub fn solve(&self, spec: &SolverSpec) -> Result<SolveResult, SessionError> {
        let instance = self.shared_instance()?;
        self.solve_on(&instance, spec)
    }

    /// One job of a solve/batch against an already-validated instance.
    fn solve_on(
        &self,
        instance: &Arc<WasoInstance>,
        spec: &SolverSpec,
    ) -> Result<SolveResult, SessionError> {
        // Union of session-level and spec-level required attendees,
        // first-mention order. The merged set is re-validated: the spec
        // half never went through `instance()`.
        let mut required = self.required.clone();
        for &v in &spec.required {
            if !required.contains(&v) {
                required.push(v);
            }
        }
        validate_required(instance, &required)?;

        let entry = self.registry.resolve(spec)?;
        if !required.is_empty() && !entry.capabilities.required_attendees {
            // Rejected up front, before paying for construction — and
            // re-checked by the solver itself as a backstop.
            return Err(SolveError::RequiredUnsupported { solver: entry.name }.into());
        }

        let mut solver = self.registry.build(spec)?;
        let result = match solver.pool_threads() {
            // Pooled solve: run as a job of the session pool (attached,
            // or spawned on first use), so worker threads outlive — and
            // are shared by — every pooled solve, of this session and of
            // any other session attached to the same pool. The lock
            // guards only the Arc, never a solve: concurrent jobs
            // proceed in parallel.
            Some(threads) => {
                let pool = self.session_pool(threads);
                solver.solve_pooled(instance, &required, self.seed, &pool)?
            }
            None => solver.solve_with_required(instance, &required, self.seed)?,
        };
        debug_assert!(
            required.iter().all(|&v| result.group.contains(v)),
            "solver {} violated the required-attendee contract",
            solver.name()
        );
        Ok(result)
    }

    /// [`WasoSession::solve`] from a spec string (`"cbas-nd:budget=500"`),
    /// resolved and canonicalized against the session's registry.
    pub fn solve_str(&self, spec: &str) -> Result<SolveResult, SessionError> {
        let spec = self.registry.parse(spec)?;
        self.solve(&spec)
    }

    /// The session's pool, spawning a private one sized
    /// `pool_threads.unwrap_or(spec_threads)` on first pooled use.
    fn session_pool(&self, spec_threads: usize) -> Arc<SharedPool> {
        let mut guard = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(guard.get_or_insert_with(|| {
            Arc::new(SharedPool::new(self.pool_threads.unwrap_or(spec_threads)))
        }))
    }

    /// Spawns the lazily-sized session pool **before** a batch's jobs
    /// fan out, so its worker count comes from the *first* pooled spec
    /// in slice order — exactly as a sequential run would size it — and
    /// never from whichever concurrent job happens to win the
    /// `session_pool` race. Unbuildable specs are skipped here; their
    /// own job slot reports the error.
    fn prewarm_pool(&self, specs: &[SolverSpec]) {
        for spec in specs {
            if let Ok(solver) = self.registry.build(spec) {
                if let Some(threads) = solver.pool_threads() {
                    let _ = self.session_pool(threads);
                    return;
                }
            }
        }
    }

    /// Runs a slice of solve jobs over the session's shared state: the
    /// instance is validated and cloned **once**, every pooled job runs
    /// over the **same** shared worker pool — no per-solve thread
    /// spawns, no per-solve graph clones — and independent jobs run
    /// **concurrently** (the pool's scheduler deals their stages across
    /// its workers, so a light job is never stuck behind a heavy one).
    /// Each job carries its own constraints via [`SolverSpec::require`],
    /// merged with the session's as in [`WasoSession::solve`].
    ///
    /// Per-job failures (unbuildable spec, infeasible constraints) land
    /// in that job's slot; an instance-level failure fails the batch.
    /// Results are returned in spec order and are bit-identical to
    /// calling [`WasoSession::solve`] once per spec — per-job RNG
    /// streams make the concurrency unobservable.
    pub fn solve_batch(
        &self,
        specs: &[SolverSpec],
    ) -> Result<Vec<Result<SolveResult, SessionError>>, SessionError> {
        let instance = self.shared_instance()?;
        self.prewarm_pool(specs);
        Ok(run_concurrently(specs.len(), |i| {
            self.solve_on(&instance, &specs[i])
        }))
    }

    /// [`WasoSession::solve_batch`] from spec strings; a string that does
    /// not parse fails its own slot, not the batch.
    pub fn solve_many<'a>(
        &self,
        specs: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<Result<SolveResult, SessionError>>, SessionError> {
        let instance = self.shared_instance()?;
        // Parse up front (cheap, deterministic order) so the pool can be
        // pre-sized from the first pooled spec; parse failures keep
        // their slots.
        let specs: Vec<Result<SolverSpec, SpecError>> =
            specs.into_iter().map(|s| self.registry.parse(s)).collect();
        let parsed: Vec<SolverSpec> = specs.iter().filter_map(|s| s.clone().ok()).collect();
        self.prewarm_pool(&parsed);
        Ok(run_concurrently(specs.len(), |i| match &specs[i] {
            Ok(spec) => self.solve_on(&instance, spec),
            Err(e) => Err(e.clone().into()),
        }))
    }
}

/// Runs `n` independent jobs over a small crew of coordinator threads and
/// returns their outcomes in job order. The crew is sized
/// `min(n, max(2, available_parallelism))` — at least two coordinators,
/// so batch jobs overlap (and the concurrency equivalence tests mean
/// something) even on a single-core box; each coordinator thread drives
/// whole jobs, while the per-sample parallelism lives in the worker pool
/// the jobs share. A panicking job propagates (after the crew drains, so
/// no work is silently lost).
fn run_concurrently<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let crew = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        .max(2)
        .min(n);
    if n <= 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..crew)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return done;
                        }
                        done.push((i, job(i)));
                    }
                })
            })
            .collect();
        for handle in handles {
            let done = handle
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            for (i, outcome) in done {
                out[i] = Some(outcome);
            }
        }
    });
    out.into_iter()
        .map(|outcome| outcome.expect("every job index is claimed exactly once"))
        .collect()
}

/// Bounds, duplicate and size checks for a required-attendee list.
fn validate_required(instance: &WasoInstance, required: &[NodeId]) -> Result<(), SessionError> {
    let n = instance.graph().num_nodes() as u32;
    let mut seen = std::collections::BTreeSet::new();
    for &v in required {
        if v.0 >= n {
            return Err(CoreError::UnknownNode(v.0).into());
        }
        if !seen.insert(v.0) {
            return Err(CoreError::DuplicateMember(v.0).into());
        }
    }
    if required.len() > instance.k() {
        return Err(CoreError::WrongSize {
            got: required.len(),
            want: instance.k(),
        }
        .into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    fn path4() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        b.build()
    }

    #[test]
    fn session_solves_with_any_registered_spec() {
        let session = WasoSession::new(path4()).k(3);
        for spec in ["dgreedy", "cbas:budget=60,stages=2", "exact"] {
            let res = session.solve_str(spec).unwrap();
            assert_eq!(res.group.len(), 3, "{spec}");
        }
    }

    #[test]
    fn missing_k_is_an_error() {
        let err = WasoSession::new(path4()).solve_str("dgreedy").unwrap_err();
        assert_eq!(err, SessionError::GroupSizeNotSet);
    }

    #[test]
    fn required_attendees_are_enforced_or_rejected() {
        let session = WasoSession::new(path4()).k(3).require([NodeId(0)]);
        // CBAS-ND honours the requirement.
        let res = session.solve_str("cbas-nd:budget=60,stages=2").unwrap();
        assert!(res.group.contains(NodeId(0)));
        // CBAS cannot guarantee it — rejected, not ignored.
        let err = session.solve_str("cbas:budget=60").unwrap_err();
        assert_eq!(
            err,
            SessionError::Solve(SolveError::RequiredUnsupported { solver: "cbas" })
        );
    }

    #[test]
    fn spec_level_requirements_merge_with_session_ones() {
        let session = WasoSession::new(path4()).k(3).require([NodeId(0)]);
        let res = session
            .solve(
                &SolverSpec::cbas_nd()
                    .budget(80)
                    .stages(2)
                    .require([NodeId(2)]),
            )
            .unwrap();
        assert!(res.group.contains(NodeId(0)));
        assert!(res.group.contains(NodeId(2)));
    }

    #[test]
    fn invalid_required_sets_fail_validation() {
        let g = path4();
        let err = WasoSession::new(g.clone())
            .k(2)
            .require([NodeId(99)])
            .solve_str("cbas-nd")
            .unwrap_err();
        assert_eq!(err, SessionError::Core(CoreError::UnknownNode(99)));

        let err = WasoSession::new(g.clone())
            .k(2)
            .require([NodeId(1), NodeId(1)])
            .solve_str("cbas-nd")
            .unwrap_err();
        assert_eq!(err, SessionError::Core(CoreError::DuplicateMember(1)));

        let err = WasoSession::new(g)
            .k(2)
            .require([NodeId(0), NodeId(1), NodeId(2)])
            .solve_str("cbas-nd")
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Core(CoreError::WrongSize { got: 3, want: 2 })
        );
    }

    #[test]
    fn disconnected_mode_reaches_separated_optima() {
        // Two components; the best pair straddles them.
        let mut b = GraphBuilder::new();
        let a = b.add_node(10.0);
        let c = b.add_node(9.0);
        let d = b.add_node(1.0);
        b.add_edge_symmetric(a, d, 0.1).unwrap();
        let _ = c;
        let session = WasoSession::new(b.build()).k(2).disconnected();
        let res = session.solve_str("dgreedy").unwrap();
        assert_eq!(res.group.willingness(), 19.0);
    }

    #[test]
    fn lambda_rescores_the_instance() {
        let session = WasoSession::new(path4()).k(3).lambda_uniform(1.0);
        // λ = 1 everywhere: tightness vanishes, best trio is {v1,v2,v3}
        // by pure interest (8+7+6).
        let res = session.solve_str("exact").unwrap();
        assert_eq!(res.group.willingness(), 21.0);

        let err = WasoSession::new(path4())
            .k(3)
            .lambda(vec![0.5; 3])
            .solve_str("dgreedy")
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Core(CoreError::BadParameterLength { got: 3, want: 4 })
        );
    }

    #[test]
    fn seed_policy_is_deterministic_and_overridable() {
        let g = waso_datasets::synthetic::facebook_like_n(120, 3);
        let session = WasoSession::new(g.clone()).k(6);
        let a = session.solve_str("cbas-nd:budget=80,stages=3").unwrap();
        let b = session.solve_str("cbas-nd:budget=80,stages=3").unwrap();
        assert_eq!(a.group, b.group, "default seed is fixed");

        let reseeded = WasoSession::new(g).k(6).seed(7);
        let c = reseeded.solve_str("cbas-nd:budget=80,stages=3").unwrap();
        // Different seed explores differently (stats differ even if the
        // answer coincides).
        assert!(c.group.validate(&reseeded.instance().unwrap()).is_ok());
    }

    #[test]
    fn out_of_range_spec_strings_error_instead_of_panicking() {
        // A user-supplied `cbas-nd:rho=0` used to assert inside the
        // engine; it must surface as a typed spec error.
        let session = WasoSession::new(path4()).k(3);
        for (spec, key) in [
            ("cbas-nd:rho=0", "rho"),
            ("cbas-nd:budget=60,rho=1.5", "rho"),
            ("cbas-nd-g:smoothing=-0.5", "smoothing"),
            ("cbas-nd-par:threads=2,smoothing=1.5", "smoothing"),
        ] {
            match session.solve_str(spec) {
                Err(SessionError::Spec(SpecError::OutOfRange { key: k, .. })) => {
                    assert_eq!(k, key, "{spec}")
                }
                other => panic!("{spec}: expected OutOfRange, got {:?}", other.err()),
            }
        }
    }

    #[test]
    fn batch_solves_match_sequential_solves() {
        let g = waso_datasets::synthetic::facebook_like_n(100, 3);
        let specs = vec![
            SolverSpec::cbas_nd().budget(60).stages(3).threads(2),
            SolverSpec::cbas().budget(60).stages(2).threads(3),
            SolverSpec::dgreedy(),
            SolverSpec::cbas_nd()
                .budget(60)
                .stages(3)
                .threads(4)
                .require([NodeId(0)]),
        ];
        let batch_session = WasoSession::new(g.clone()).k(5).seed(3);
        let batch = batch_session.solve_batch(&specs).unwrap();
        assert_eq!(batch.len(), specs.len());
        for (spec, outcome) in specs.iter().zip(&batch) {
            // Fresh session per spec: the per-solve baseline the batch
            // must be bit-identical to.
            let alone = WasoSession::new(g.clone())
                .k(5)
                .seed(3)
                .solve(spec)
                .unwrap();
            let batched = outcome.as_ref().unwrap();
            assert_eq!(batched.group, alone.group, "{spec}");
            assert_eq!(batched.stats.samples_drawn, alone.stats.samples_drawn);
        }
        let constrained = batch[3].as_ref().unwrap();
        assert!(constrained.group.contains(NodeId(0)));
    }

    #[test]
    fn batch_jobs_fail_individually_not_collectively() {
        let session = WasoSession::new(path4()).k(3);
        let results = session
            .solve_many(["dgreedy", "nope-nope", "cbas:budget=40,rho=1", "exact"])
            .unwrap();
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(SessionError::Spec(SpecError::UnknownAlgorithm { .. }))
        ));
        assert!(matches!(
            results[2],
            Err(SessionError::Spec(SpecError::UnsupportedOption { .. }))
        ));
        assert!(results[3].is_ok());
    }

    #[test]
    fn session_pool_is_reused_across_solves() {
        // Many pooled solves through one session: all must succeed and
        // match a fresh session's answers (the pool and the cached
        // instance are invisible in results).
        let g = waso_datasets::synthetic::facebook_like_n(80, 3);
        let session = WasoSession::new(g.clone()).k(4).seed(9).pool_threads(3);
        let spec_a = SolverSpec::cbas_nd().budget(50).stages(2).threads(8);
        let spec_b = SolverSpec::cbas().budget(50).stages(2).threads(1);
        for _ in 0..3 {
            let a = session.solve(&spec_a).unwrap();
            let b = session.solve(&spec_b).unwrap();
            let fresh = WasoSession::new(g.clone()).k(4).seed(9);
            assert_eq!(a.group, fresh.solve(&spec_a).unwrap().group);
            assert_eq!(b.group, fresh.solve(&spec_b).unwrap().group);
        }
    }

    #[test]
    fn sessions_share_one_pool_across_different_graphs() {
        // Two sessions over *different* instances attached to one
        // process-wide pool: every solve matches a fresh private-pool
        // session bit-for-bit, and no worker is ever respawned.
        let pool = Arc::new(SharedPool::new(2));
        let g1 = waso_datasets::synthetic::facebook_like_n(60, 3);
        let g2 = waso_datasets::synthetic::facebook_like_n(90, 3);
        let s1 = WasoSession::new(g1.clone())
            .k(4)
            .seed(5)
            .attach_pool(Arc::clone(&pool));
        let s2 = WasoSession::new(g2.clone())
            .k(5)
            .seed(6)
            .attach_pool(Arc::clone(&pool));
        let spec = SolverSpec::cbas_nd().budget(50).stages(2).threads(3);
        for _ in 0..2 {
            let a = s1.solve(&spec).unwrap();
            let b = s2.solve(&spec).unwrap();
            let fresh1 = WasoSession::new(g1.clone()).k(4).seed(5);
            let fresh2 = WasoSession::new(g2.clone()).k(5).seed(6);
            assert_eq!(a.group, fresh1.solve(&spec).unwrap().group);
            assert_eq!(b.group, fresh2.solve(&spec).unwrap().group);
        }
        assert_eq!(pool.respawned_workers(), 0);
        drop((s1, s2));
        assert_eq!(Arc::strong_count(&pool), 1, "sessions release the pool");
    }

    #[test]
    fn concurrent_batches_on_one_attached_pool_match_sequential_solves() {
        let pool = Arc::new(SharedPool::new(3));
        let g = waso_datasets::synthetic::facebook_like_n(80, 3);
        let specs = vec![
            SolverSpec::cbas_nd().budget(60).stages(3).threads(2),
            SolverSpec::cbas().budget(60).stages(2).threads(4),
            SolverSpec::dgreedy(),
            SolverSpec::cbas_nd()
                .budget(40)
                .stages(2)
                .threads(1)
                .require([NodeId(0)]),
        ];
        let session = WasoSession::new(g.clone())
            .k(5)
            .seed(11)
            .attach_pool(Arc::clone(&pool));
        let batch = session.solve_batch(&specs).unwrap();
        for (spec, outcome) in specs.iter().zip(&batch) {
            let alone = WasoSession::new(g.clone())
                .k(5)
                .seed(11)
                .solve(spec)
                .unwrap();
            let batched = outcome.as_ref().unwrap();
            assert_eq!(batched.group, alone.group, "{spec}");
            assert_eq!(batched.stats.samples_drawn, alone.stats.samples_drawn);
        }
    }

    #[test]
    fn unknown_algorithms_name_the_known_set() {
        let err = WasoSession::new(path4())
            .k(2)
            .solve_str("magic")
            .unwrap_err();
        match err {
            SessionError::Spec(SpecError::UnknownAlgorithm { known, .. }) => {
                assert!(known.contains(&"exact"), "exact is registered");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

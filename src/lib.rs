//! # waso — Willingness Optimization for Social Group Activity
//!
//! A production-quality Rust reproduction of Shuai, Yang, Yu & Chen,
//! *Willingness Optimization for Social Group Activity* (VLDB 2013):
//! the WASO problem, the CBAS / CBAS-ND randomized solvers with optimal
//! computing-budget allocation and cross-entropy neighbour differentiation,
//! the greedy baselines, an exact branch-and-bound (the paper's CPLEX
//! ground truth), synthetic datasets matching the paper's evaluation
//! networks, and a harness regenerating every figure of its §5.
//!
//! This facade crate re-exports every sub-crate under a stable path and
//! provides a [`prelude`] for the common workflow:
//!
//! ```
//! use waso::prelude::*;
//!
//! // Build a tiny social graph: interest scores on nodes, tightness on edges.
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(0.8);
//! let c = b.add_node(0.5);
//! let d = b.add_node(0.9);
//! b.add_edge_symmetric(a, c, 0.7).unwrap();
//! b.add_edge_symmetric(c, d, 0.4).unwrap();
//! let graph = b.build();
//!
//! // Ask for the best connected group of k = 2.
//! let instance = WasoInstance::new(graph, 2).unwrap();
//! let mut solver = CbasNd::new(CbasNdConfig::fast());
//! let result = solver.solve_seeded(&instance, 42).unwrap();
//! assert_eq!(result.group.len(), 2);
//! // Optimum: {a, c} with W = 0.8 + 0.5 + 2·0.7 = 2.7.
//! assert!((result.group.willingness() - 2.7).abs() < 1e-9);
//! ```
//!
//! | Crate | Contents |
//! |---|---|
//! | [`graph`] | CSR social graphs, builders, generators, traversal, I/O |
//! | [`core`] | WASO instances, the willingness objective, groups, scenarios |
//! | [`algos`] | DGreedy, RGreedy, CBAS, CBAS-ND(-G), online replanning, parallel |
//! | [`exact`] | ESU enumeration, branch-and-bound, the Appendix-B IP model |
//! | [`datasets`] | Facebook/DBLP/Flickr-like synthetics, simulated user study |
//! | [`stats`] | numerics: normal distribution, power laws, quantiles, quadrature |

pub use waso_algos as algos;
pub use waso_core as core;
pub use waso_datasets as datasets;
pub use waso_exact as exact;
pub use waso_graph as graph;
pub use waso_stats as stats;

/// One-line imports for the common build-graph → solve → inspect workflow.
pub mod prelude {
    pub use waso_algos::{
        Cbas, CbasConfig, CbasNd, CbasNdConfig, DGreedy, OnlinePlanner, ParallelCbasNd, RGreedy,
        RGreedyConfig, SolveError, SolveResult, Solver,
    };
    pub use waso_core::{scenario, willingness, Group, WasoInstance};
    pub use waso_graph::{GraphBuilder, NodeId, SocialGraph};
}

//! # waso — Willingness Optimization for Social Group Activity
//!
//! A production-quality Rust reproduction of Shuai, Yang, Yu & Chen,
//! *Willingness Optimization for Social Group Activity* (VLDB 2013):
//! the WASO problem, the CBAS / CBAS-ND randomized solvers with optimal
//! computing-budget allocation and cross-entropy neighbour differentiation,
//! the greedy baselines, an exact branch-and-bound (the paper's CPLEX
//! ground truth), synthetic datasets matching the paper's evaluation
//! networks, and a harness regenerating every figure of its §5.
//!
//! The whole staged family (CBAS, CBAS-ND, CBAS-ND-G, the §5.3.1
//! parallel runs) executes through **one** stage loop —
//! [`waso_algos::engine::StagedEngine`] — whose budget-allocation policy,
//! candidate distribution and execution backend (serial, a per-solve
//! worker pool, or a job of the process-wide self-healing
//! [`waso_algos::SharedPool`] that any number of sessions share) are
//! orthogonal axes. Every solver is a pure function of
//! `(instance, seed)`, bit-identical across thread counts, deals,
//! concurrent batches and even worker panics; see the Architecture
//! section of the README.
//!
//! ## The unified solving API
//!
//! Three pieces, used by every caller in the workspace (the CLI, the
//! figure drivers, the examples — and your code):
//!
//! * [`SolverSpec`] — one serializable description of *which* algorithm
//!   with *what* settings (`"cbas-nd:budget=2000,stages=10"`), parseable
//!   from CLI strings and constructible via a builder;
//! * [`SolverRegistry`] (see [`registry()`]) — the single place specs
//!   become solvers; algorithm names, help text and the figure rosters
//!   are derived from it, and solver options a spec names but a solver
//!   cannot honour are rejected, never ignored;
//! * [`WasoSession`] — the facade that owns instance validation, the seed
//!   policy, and uniform constraint enforcement (required attendees,
//!   connectivity relaxation, λ re-weighting) across every solver.
//!
//! ```
//! use waso::prelude::*;
//!
//! // Build a tiny social graph: interest scores on nodes, tightness on edges.
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(0.8);
//! let c = b.add_node(0.5);
//! let d = b.add_node(0.9);
//! b.add_edge_symmetric(a, c, 0.7).unwrap();
//! b.add_edge_symmetric(c, d, 0.4).unwrap();
//! let graph = b.build();
//!
//! // Ask for the best connected group of k = 2.
//! let session = WasoSession::new(graph).k(2).seed(42);
//! let result = session.solve(&SolverSpec::cbas_nd().budget(200).stages(4)).unwrap();
//! assert_eq!(result.group.len(), 2);
//! // Optimum: {a, c} with W = 0.8 + 0.5 + 2·0.7 = 2.7.
//! assert!((result.group.willingness() - 2.7).abs() < 1e-9);
//!
//! // The same session solves with any registered algorithm — including
//! // the exact branch-and-bound — from a plain string.
//! let exact = session.solve_str("exact").unwrap();
//! assert_eq!(exact.group, result.group);
//!
//! // Serving-style: submit the solve as a job handle instead of
//! // blocking. Handles poll, cancel, stream incumbents — and `wait()`
//! // returns exactly what the blocking call would have (`solve` *is*
//! // submit+wait). Spec knobs `deadline_ms=`/`patience=` bound latency.
//! let handle = session
//!     .submit(&SolverSpec::cbas_nd().budget(200).stages(4))
//!     .unwrap();
//! let job = handle.wait().unwrap();
//! assert_eq!(job.group, result.group);
//! assert_eq!(job.stats.termination, waso::algos::Termination::Completed);
//!
//! // Constraints are enforced uniformly: a solver that cannot guarantee
//! // required attendees rejects the combination instead of ignoring it.
//! let constrained = WasoSession::new(session.graph().clone()).k(2).require([a]);
//! assert!(constrained.solve_str("cbas-nd:budget=200,stages=4").is_ok());
//! assert!(constrained.solve_str("cbas").is_err());
//! ```
//!
//! | Crate | Contents |
//! |---|---|
//! | [`graph`] | CSR social graphs, builders, generators, traversal, I/O |
//! | [`core`] | WASO instances, the willingness objective, groups, scenarios |
//! | [`algos`] | the `StagedEngine` + DGreedy, RGreedy, CBAS, CBAS-ND(-G), online replanning, parallel, [`SolverSpec`]/[`SolverRegistry`] |
//! | [`exact`] | ESU enumeration, branch-and-bound, the Appendix-B IP model |
//! | [`datasets`] | Facebook/DBLP/Flickr-like synthetics, simulated user study |
//! | [`stats`] | numerics: normal distribution, power laws, quantiles, quadrature |

pub use waso_algos as algos;
pub use waso_core as core;
pub use waso_datasets as datasets;
pub use waso_exact as exact;
pub use waso_graph as graph;
pub use waso_stats as stats;

pub mod session;

pub use session::{registry, MemoStats, SessionError, SolveHandle, WasoSession, DEFAULT_SEED};
pub use waso_algos::{SolverRegistry, SolverSpec};

/// One-line imports for the common build-graph → session → solve workflow.
pub mod prelude {
    pub use crate::session::{registry, MemoStats, SessionError, SolveHandle, WasoSession};
    pub use waso_algos::{
        Capabilities, Cbas, CbasConfig, CbasNd, CbasNdConfig, DGreedy, Deal, Incumbent, JobControl,
        JobProgress, OnlinePlanner, ParallelCbasNd, PoolMode, PoolStats, RGreedy, RGreedyConfig,
        SharedPool, SolveError, SolveResult, Solver, SolverRegistry, SolverSpec, SpecError,
        Termination,
    };
    pub use waso_core::{scenario, willingness, Group, WasoInstance};
    pub use waso_graph::{GraphBuilder, NodeId, SocialGraph};
}

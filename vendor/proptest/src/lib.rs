//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the subset of proptest the workspace's tests use: the
//! [`proptest!`] macro over range / tuple / `collection::vec` / `any`
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*!`
//! macros. Cases are drawn deterministically (the stream is a pure
//! function of the test name and case index), so failures reproduce;
//! shrinking is not implemented — a failing case panics with its inputs
//! available via the assertion message.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases per property (default 64).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-test random source.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        Self(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0xA5A5)))
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values for one property parameter.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy for "any value of `T`" (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over all of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn pick(&self, rng: &mut TestRng) -> bool {
        rng.random()
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Lengths acceptable to [`vec`]: a fixed size or a range of sizes.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Vectors whose elements come from `element` and whose length comes
    /// from `len` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(param in strategy, ...)`
/// becomes an ordinary test running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..cfg.cases {
                let mut __prop_rng = $crate::TestRng::for_case(stringify!($name), __case);
                $crate::__proptest_bind!(__prop_rng, $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::pick(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = $crate::Strategy::pick(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in -1.0..1.0f64, flip: bool) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
            let _ = flip;
        }

        #[test]
        fn vectors_respect_length_specs(
            fixed in crate::collection::vec(0usize..5, 7),
            ranged in crate::collection::vec((0u32..4, crate::any::<bool>()), 1..5),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((1..5).contains(&ranged.len()));
            for (v, _) in ranged {
                prop_assert!(v < 4);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        let mut c = TestRng::for_case("t", 1);
        use rand::Rng;
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the subset of the Criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, per-input
//! benchmarks, `iter` / `iter_batched`). Each benchmark is timed with a
//! short adaptive loop and reported as a median per-iteration time on
//! stdout — good enough to compare hot paths locally, with no statistics
//! machinery. Set `WASO_BENCH_QUICK=1` to run each benchmark exactly once
//! (CI smoke mode).

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Batch sizing hints for [`Bencher::iter_batched`]. The shim treats all
/// variants identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures.
pub struct Bencher {
    samples: usize,
    last: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            last: None,
        }
    }

    /// Times `routine`, running it enough times for a stable estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration run.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed();

        let iters = if quick_mode() {
            1
        } else {
            // Aim for ~100ms of work or `samples` iterations, whichever is
            // smaller.
            let budget = Duration::from_millis(100);
            let fit = (budget.as_nanos() / once.as_nanos().max(1)) as usize;
            fit.clamp(1, self.samples.max(1))
        };

        let mut best = once;
        for _ in 0..iters {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            let dt = t0.elapsed();
            if dt < best {
                best = dt;
            }
        }
        self.last = Some(best);
    }

    /// Times `routine` over values produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = if quick_mode() { 1 } else { self.samples.max(1) };
        let mut best: Option<Duration> = None;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            let dt = t0.elapsed();
            if best.is_none_or(|b| dt < b) {
                best = Some(dt);
            }
        }
        self.last = best;
    }
}

fn quick_mode() -> bool {
    std::env::var_os("WASO_BENCH_QUICK").is_some()
}

fn report(group: Option<&str>, id: &str, bencher: &Bencher) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match bencher.last {
        Some(d) => println!("bench {label:<50} {:>12.3?} /iter", d),
        None => println!("bench {label:<50}  (no measurement)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration budget (compatible with Criterion's sample
    /// count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(Some(&self.name), &id.to_string(), &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), &b);
        self
    }

    /// Ends the group (prints nothing in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(20);
        f(&mut b);
        report(None, &id.to_string(), &b);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_a_time() {
        let mut b = Bencher::new(5);
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.last.is_some());
    }

    #[test]
    fn batched_excludes_setup() {
        let mut b = Bencher::new(3);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.last.is_some());
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of the `rand` API it actually uses:
//!
//! * [`Rng`] — the core source-of-randomness trait (`next_u64`);
//! * [`RngExt`] — value-level helpers (`random`, `random_range`), blanket
//!   implemented for every `Rng`;
//! * [`SeedableRng`] + [`rngs::StdRng`] — a deterministic, seedable
//!   generator (SplitMix64-expanded xoshiro256++).
//!
//! Streams are fully deterministic functions of the seed, which is the only
//! property the WASO reproduction relies on (every solver derives its
//! randomness from explicit `(seed, stream)` pairs).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly random 64-bit words.
pub trait Rng {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Types that can be drawn from the "standard" distribution of [`RngExt::random`]:
/// `f64` uniform in `[0, 1)`, integers uniform over their full range, `bool` fair.
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value in the range. Panics on empty ranges.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-corrected) draw in `[0, span)`.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift with a single rejection zone.
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Value-level helpers over any [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value from the standard distribution of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a boolean that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic, fast, and statistically strong enough
    /// for Monte-Carlo sampling (it is the generator family the real
    /// `rand::rngs::SmallRng` uses).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state; SplitMix64
            // cannot produce four zero outputs in a row, but be explicit.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.random_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn unsized_rng_is_usable_via_trait_object_like_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
